// Package controller models the proposed timing-accurate I/O controller of
// Section IV (Figure 4).
//
// The controller has two hardware components:
//
//   - the Controller Memory, which stores the pre-loaded I/O task programs
//     (Phase 1) and is shared by all processors; and
//   - one Controller Processor per I/O device, holding the scheduling
//     table written by the offline scheduling methods (Phase 2) and the
//     execution module — global timer, synchroniser, fault-recovery unit
//     and EXU — that executes each job exactly at its table start time
//     (Phase 3), plus the request and response channels that connect it to
//     the application processors.
//
// The model is cycle-accurate with respect to everything the paper's
// evaluation depends on: jobs start exactly at their scheduled cycles, the
// EXU occupies the device for the program's real duration, missing
// requests are handled by the fault-recovery unit without disturbing other
// jobs, and read responses flow back through the response channel.
package controller
