package controller

import (
	"fmt"
	"sort"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// Memory is the controller memory: the pre-loaded task programs with a
// bounded capacity (the reference implementation provisions 32 KB of
// BRAM, Table I).
type Memory struct {
	capacity int
	used     int
	programs map[int]Program
}

// NewMemory builds a controller memory with the given capacity in bytes.
func NewMemory(capacity int) (*Memory, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("controller: memory capacity %d must be positive", capacity)
	}
	return &Memory{capacity: capacity, programs: make(map[int]Program)}, nil
}

// DefaultMemoryBytes matches the reference implementation's 32 KB BRAM.
const DefaultMemoryBytes = 32 * 1024

// Preload stores the program for an I/O task (Phase 1). Re-loading a task
// replaces its program and adjusts the accounting.
func (m *Memory) Preload(task int, prog Program) error {
	if len(prog) == 0 {
		return fmt.Errorf("controller: task %d program is empty", task)
	}
	newBytes := prog.Bytes()
	oldBytes := 0
	if old, ok := m.programs[task]; ok {
		oldBytes = old.Bytes()
	}
	if m.used-oldBytes+newBytes > m.capacity {
		return fmt.Errorf("controller: memory full: %d/%d bytes used, task %d needs %d",
			m.used, m.capacity, task, newBytes)
	}
	m.used += newBytes - oldBytes
	m.programs[task] = prog
	return nil
}

// Fetch retrieves a task's program.
func (m *Memory) Fetch(task int) (Program, bool) {
	p, ok := m.programs[task]
	return p, ok
}

// Used returns the occupied bytes.
func (m *Memory) Used() int { return m.used }

// Capacity returns the memory size in bytes.
func (m *Memory) Capacity() int { return m.capacity }

// TableEntry is one scheduling-table row: job λ(Task)^(Job) starts at
// Start (cycles within the hyper-period) and may occupy the device for at
// most Budget cycles — the job's Ci, which the fault-recovery unit enforces.
type TableEntry struct {
	Task   int
	Job    int
	Start  timing.Cycle
	Budget timing.Cycle
}

// FaultKind classifies run-time exceptions caught by the fault-recovery
// unit inside the synchroniser.
type FaultKind int

const (
	// FaultMissingRequest: the job's start time arrived but no request had
	// enabled the task (e.g. the request packet was lost). The job is
	// skipped so the rest of the schedule stays intact.
	FaultMissingRequest FaultKind = iota
	// FaultMissingProgram: the task was never pre-loaded into controller
	// memory.
	FaultMissingProgram
	// FaultBudgetOverrun: the program ran longer than the job's budget;
	// execution is truncated at the budget boundary.
	FaultBudgetOverrun
	// FaultExecError: a command failed on the device.
	FaultExecError
)

func (k FaultKind) String() string {
	switch k {
	case FaultMissingRequest:
		return "missing-request"
	case FaultMissingProgram:
		return "missing-program"
	case FaultBudgetOverrun:
		return "budget-overrun"
	case FaultExecError:
		return "exec-error"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one recorded run-time exception.
type Fault struct {
	Kind FaultKind
	Task int
	Job  int
	At   timing.Cycle
	Err  error
}

// Response is one value travelling back to the application processor
// through the response channel.
type Response struct {
	Task  int
	Job   int
	At    timing.Cycle
	Value uint64
}

// Execution records one completed job execution for verification.
type Execution struct {
	Task  int
	Job   int
	Start timing.Cycle
	End   timing.Cycle
}

// Policy selects the fault-recovery behaviour for missing requests.
type Policy int

const (
	// SkipMissing skips jobs whose tasks were not enabled (default):
	// the scheduling of other jobs is preserved exactly.
	SkipMissing Policy = iota
	// ExecuteAlways treats pre-loading as a standing request and executes
	// every table entry; the request channel then only carries dynamic
	// re-arming.
	ExecuteAlways
)

// Processor is one controller processor (Figure 4), bound to one device.
type Processor struct {
	k    *sim.Kernel
	mem  *Memory
	exec Executor
	pol  Policy

	table   []TableEntry
	enabled map[int]bool

	busyUntil  timing.Cycle
	faults     []Fault
	executions []Execution
	onResponse func(Response)
}

// NewProcessor builds a controller processor on the kernel, bound to the
// shared memory and one device executor.
func NewProcessor(k *sim.Kernel, mem *Memory, exec Executor, pol Policy) (*Processor, error) {
	if k == nil || mem == nil || exec == nil {
		return nil, fmt.Errorf("controller: nil kernel, memory or executor")
	}
	return &Processor{k: k, mem: mem, exec: exec, pol: pol, enabled: make(map[int]bool)}, nil
}

// LoadTable installs the offline scheduling decisions (Phase 2). Entries
// are sorted by start time; overlapping budgets are rejected because a
// valid offline schedule can never produce them.
func (p *Processor) LoadTable(entries []TableEntry) error {
	t := append([]TableEntry(nil), entries...)
	sort.SliceStable(t, func(a, b int) bool { return t[a].Start < t[b].Start })
	for i := 1; i < len(t); i++ {
		if t[i-1].Start+t[i-1].Budget > t[i].Start {
			return fmt.Errorf("controller: table entries %d and %d overlap ([%d+%d] vs %d)",
				i-1, i, t[i-1].Start, t[i-1].Budget, t[i].Start)
		}
	}
	p.table = t
	return nil
}

// Table returns the installed entries in start order.
func (p *Processor) Table() []TableEntry { return p.table }

// EnableTask marks a task's schedule as requested (the request channel
// setting the task's bit to 1).
func (p *Processor) EnableTask(task int) { p.enabled[task] = true }

// DisableTask clears a task's request bit.
func (p *Processor) DisableTask(task int) { delete(p.enabled, task) }

// OnResponse registers the response-channel callback.
func (p *Processor) OnResponse(fn func(Response)) { p.onResponse = fn }

// Faults returns the recorded run-time exceptions.
func (p *Processor) Faults() []Fault { return p.faults }

// Executions returns the completed job executions in start order.
func (p *Processor) Executions() []Execution { return p.executions }

// Start arms the synchroniser: every table entry is scheduled on the
// global timer for the given number of hyper-periods (Phase 3).
// hyperperiod is the table's repetition interval in cycles; periods must
// be at least 1.
func (p *Processor) Start(hyperperiod timing.Cycle, periods int) error {
	if periods < 1 {
		return fmt.Errorf("controller: periods = %d, need at least 1", periods)
	}
	if hyperperiod <= 0 && periods > 1 {
		return fmt.Errorf("controller: repetition needs a positive hyper-period")
	}
	for rep := 0; rep < periods; rep++ {
		offset := timing.Cycle(rep) * hyperperiod
		for _, e := range p.table {
			e := e
			p.k.At(offset+e.Start, func() { p.fire(e) })
		}
	}
	return nil
}

// fire is the synchroniser's action at a job's start instant: check the
// request bit, fetch and translate the program, and hand the commands to
// the EXU. Faults never propagate to other jobs.
func (p *Processor) fire(e TableEntry) {
	now := p.k.Now()
	if p.pol == SkipMissing && !p.enabled[e.Task] {
		p.faults = append(p.faults, Fault{Kind: FaultMissingRequest, Task: e.Task, Job: e.Job, At: now})
		return
	}
	prog, ok := p.mem.Fetch(e.Task)
	if !ok {
		p.faults = append(p.faults, Fault{Kind: FaultMissingProgram, Task: e.Task, Job: e.Job, At: now})
		return
	}
	if now < p.busyUntil {
		// Defensive: a valid table can never trigger this, but a budget
		// overrun truncation bug could; record rather than corrupt state.
		p.faults = append(p.faults, Fault{Kind: FaultBudgetOverrun, Task: e.Task, Job: e.Job, At: now})
		return
	}
	cursor := now
	deadline := now + e.Budget
	for _, cmd := range prog {
		busy, resp, err := p.exec.Exec(cmd, cursor)
		if err != nil {
			p.faults = append(p.faults, Fault{Kind: FaultExecError, Task: e.Task, Job: e.Job, At: cursor, Err: err})
			break
		}
		cursor += busy
		if cursor > deadline {
			p.faults = append(p.faults, Fault{Kind: FaultBudgetOverrun, Task: e.Task, Job: e.Job, At: cursor})
			cursor = deadline
			break
		}
		if resp != nil && p.onResponse != nil {
			p.onResponse(Response{Task: e.Task, Job: e.Job, At: cursor, Value: *resp})
		}
	}
	p.busyUntil = cursor
	p.executions = append(p.executions, Execution{Task: e.Task, Job: e.Job, Start: now, End: cursor})
}

// TableFromSchedule translates one device partition's offline schedule
// (microsecond timeline) into scheduling-table entries on the controller
// clock.
func TableFromSchedule(s *sched.Schedule, clock timing.ClockHz) []TableEntry {
	entries := make([]TableEntry, 0, len(s.Entries))
	for i := range s.Entries {
		e := &s.Entries[i]
		entries = append(entries, TableEntry{
			Task:   e.Job.ID.Task,
			Job:    e.Job.ID.J,
			Start:  clock.ToCycles(e.Start),
			Budget: clock.ToCycles(e.Job.C),
		})
	}
	return entries
}

// Controller aggregates the shared memory and the per-device processors —
// the full proposed I/O controller.
type Controller struct {
	Memory     *Memory
	Processors map[taskmodel.DeviceID]*Processor
}

// New builds a controller with the default memory size.
func New() *Controller {
	mem, err := NewMemory(DefaultMemoryBytes)
	if err != nil {
		panic(err) // unreachable: constant capacity is positive
	}
	return &Controller{Memory: mem, Processors: make(map[taskmodel.DeviceID]*Processor)}
}

// AddProcessor creates and registers the processor for one device.
func (c *Controller) AddProcessor(k *sim.Kernel, dev taskmodel.DeviceID, exec Executor, pol Policy) (*Processor, error) {
	if _, dup := c.Processors[dev]; dup {
		return nil, fmt.Errorf("controller: device %d already has a processor", dev)
	}
	p, err := NewProcessor(k, c.Memory, exec, pol)
	if err != nil {
		return nil, err
	}
	c.Processors[dev] = p
	return p, nil
}

// Deploy pre-loads programs, installs the offline schedules, and arms every
// processor: phases 1–3 in one call. programs maps task ID to its command
// sequence; schedules is the output of the offline scheduler; clock
// converts the scheduling timeline to cycles.
func (c *Controller) Deploy(programs map[int]Program, schedules sched.DeviceSchedules,
	clock timing.ClockHz, hyperperiod timing.Time, periods int) error {
	for task, prog := range programs {
		if err := c.Memory.Preload(task, prog); err != nil {
			return err
		}
	}
	for dev, s := range schedules {
		p, ok := c.Processors[dev]
		if !ok {
			return fmt.Errorf("controller: no processor for device %d", dev)
		}
		if err := p.LoadTable(TableFromSchedule(s, clock)); err != nil {
			return err
		}
		if err := p.Start(clock.ToCycles(hyperperiod), periods); err != nil {
			return err
		}
	}
	return nil
}
