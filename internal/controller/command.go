package controller

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/timing"
)

// Opcode enumerates the I/O commands the EXU can execute. Continuous
// commands are grouped into one program per I/O task (Phase 1 of
// Section IV: "the continuous I/O commands are grouped as one I/O
// operation").
type Opcode int

const (
	// OpSetPin drives a GPIO pin high.
	OpSetPin Opcode = iota
	// OpClearPin drives a GPIO pin low.
	OpClearPin
	// OpTogglePin inverts a GPIO pin.
	OpTogglePin
	// OpReadPin samples a GPIO pin and emits a response.
	OpReadPin
	// OpWait stalls the EXU for Arg cycles (pulse-width shaping).
	OpWait
	// OpUARTSend transmits byte Arg on a UART device.
	OpUARTSend
	// OpSPIXfer shifts word Arg on an SPI device.
	OpSPIXfer
	// OpCANSend transmits the frame in Data on a CAN device.
	OpCANSend
)

func (o Opcode) String() string {
	switch o {
	case OpSetPin:
		return "SET"
	case OpClearPin:
		return "CLR"
	case OpTogglePin:
		return "TGL"
	case OpReadPin:
		return "RD"
	case OpWait:
		return "WAIT"
	case OpUARTSend:
		return "UART"
	case OpSPIXfer:
		return "SPI"
	case OpCANSend:
		return "CAN"
	default:
		return fmt.Sprintf("Opcode(%d)", int(o))
	}
}

// Command is one EXU instruction.
type Command struct {
	Op  Opcode
	Pin device.Pin
	// Arg is the wait duration (OpWait), byte (OpUARTSend) or word
	// (OpSPIXfer).
	Arg uint64
	// Data is the CAN payload (OpCANSend).
	Data []byte
}

// CommandBytes is the storage footprint of one command in controller
// memory, matching a 64-bit command word.
const CommandBytes = 8

// Program is the command sequence of one pre-loaded I/O task.
type Program []Command

// Bytes returns the program's controller-memory footprint. CAN payloads
// occupy additional command words.
func (p Program) Bytes() int {
	n := len(p) * CommandBytes
	for _, c := range p {
		if c.Op == OpCANSend {
			n += (len(c.Data) + CommandBytes - 1) / CommandBytes * CommandBytes
		}
	}
	return n
}

// Executor executes single commands against a concrete device, returning
// the cycles the device was occupied and, for reads, a response value.
type Executor interface {
	// DeviceName identifies the bound device in faults and responses.
	DeviceName() string
	// Exec applies cmd at cycle now. resp is non-nil only for commands
	// that produce a value (OpReadPin).
	Exec(cmd Command, now timing.Cycle) (busy timing.Cycle, resp *uint64, err error)
	// Cost returns the occupancy Exec would report for cmd without
	// touching the device; validation uses it to check programs against
	// job budgets.
	Cost(cmd Command) (timing.Cycle, error)
}

// GPIOExecutor drives a GPIO bank. Pin operations take one cycle, matching
// the single-cycle pin fabric of the reference implementation.
type GPIOExecutor struct {
	Bank *device.GPIOBank
}

// DeviceName implements Executor.
func (g GPIOExecutor) DeviceName() string { return g.Bank.Name() }

// Cost implements Executor.
func (g GPIOExecutor) Cost(cmd Command) (timing.Cycle, error) {
	switch cmd.Op {
	case OpSetPin, OpClearPin, OpTogglePin, OpReadPin:
		return 1, nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil
	default:
		return 0, fmt.Errorf("controller: GPIO device %s cannot execute %v", g.DeviceName(), cmd.Op)
	}
}

// Exec implements Executor.
func (g GPIOExecutor) Exec(cmd Command, now timing.Cycle) (timing.Cycle, *uint64, error) {
	switch cmd.Op {
	case OpSetPin:
		return 1, nil, g.Bank.Set(cmd.Pin, true, now)
	case OpClearPin:
		return 1, nil, g.Bank.Set(cmd.Pin, false, now)
	case OpTogglePin:
		return 1, nil, g.Bank.Toggle(cmd.Pin, now)
	case OpReadPin:
		lvl, err := g.Bank.Read(cmd.Pin)
		if err != nil {
			return 0, nil, err
		}
		v := uint64(0)
		if lvl {
			v = 1
		}
		return 1, &v, nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil, nil
	default:
		return 0, nil, fmt.Errorf("controller: GPIO device %s cannot execute %v", g.DeviceName(), cmd.Op)
	}
}

// UARTExecutor drives a UART transmitter.
type UARTExecutor struct {
	Dev *device.UART
}

// DeviceName implements Executor.
func (u UARTExecutor) DeviceName() string { return u.Dev.Name() }

// Cost implements Executor.
func (u UARTExecutor) Cost(cmd Command) (timing.Cycle, error) {
	switch cmd.Op {
	case OpUARTSend:
		return u.Dev.FrameDuration(), nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil
	default:
		return 0, fmt.Errorf("controller: UART device %s cannot execute %v", u.DeviceName(), cmd.Op)
	}
}

// Exec implements Executor.
func (u UARTExecutor) Exec(cmd Command, now timing.Cycle) (timing.Cycle, *uint64, error) {
	switch cmd.Op {
	case OpUARTSend:
		f := u.Dev.Transmit(byte(cmd.Arg), now)
		return f.Duration, nil, nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil, nil
	default:
		return 0, nil, fmt.Errorf("controller: UART device %s cannot execute %v", u.DeviceName(), cmd.Op)
	}
}

// SPIExecutor drives an SPI engine.
type SPIExecutor struct {
	Dev *device.SPI
}

// DeviceName implements Executor.
func (s SPIExecutor) DeviceName() string { return s.Dev.Name() }

// Cost implements Executor.
func (s SPIExecutor) Cost(cmd Command) (timing.Cycle, error) {
	switch cmd.Op {
	case OpSPIXfer:
		return s.Dev.FrameDuration(), nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil
	default:
		return 0, fmt.Errorf("controller: SPI device %s cannot execute %v", s.DeviceName(), cmd.Op)
	}
}

// Exec implements Executor.
func (s SPIExecutor) Exec(cmd Command, now timing.Cycle) (timing.Cycle, *uint64, error) {
	switch cmd.Op {
	case OpSPIXfer:
		f := s.Dev.Transfer(cmd.Arg, now)
		return f.Duration, nil, nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil, nil
	default:
		return 0, nil, fmt.Errorf("controller: SPI device %s cannot execute %v", s.DeviceName(), cmd.Op)
	}
}

// CANExecutor drives a CAN transmitter.
type CANExecutor struct {
	Dev *device.CAN
}

// DeviceName implements Executor.
func (c CANExecutor) DeviceName() string { return c.Dev.Name() }

// Cost implements Executor.
func (c CANExecutor) Cost(cmd Command) (timing.Cycle, error) {
	switch cmd.Op {
	case OpCANSend:
		return c.Dev.FrameDuration(len(cmd.Data))
	case OpWait:
		return timing.Cycle(cmd.Arg), nil
	default:
		return 0, fmt.Errorf("controller: CAN device %s cannot execute %v", c.DeviceName(), cmd.Op)
	}
}

// Exec implements Executor.
func (c CANExecutor) Exec(cmd Command, now timing.Cycle) (timing.Cycle, *uint64, error) {
	switch cmd.Op {
	case OpCANSend:
		f, err := c.Dev.Transmit(cmd.Data, now)
		if err != nil {
			return 0, nil, err
		}
		return f.Duration, nil, nil
	case OpWait:
		return timing.Cycle(cmd.Arg), nil, nil
	default:
		return 0, nil, fmt.Errorf("controller: CAN device %s cannot execute %v", c.DeviceName(), cmd.Op)
	}
}
