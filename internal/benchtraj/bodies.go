package benchtraj

import (
	"math/rand"
	"testing"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/sched/depgraph"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/staticsched"
	"repro/internal/taskmodel"
)

// The tier benchmark bodies. bench_test.go's BenchmarkGASolve etc. and
// the `ioschedbench bench` subcommand both run exactly these functions,
// so the numbers in a BENCH_*.json trajectory are measurements of the
// same code `go test -bench` exercises — not a parallel reimplementation
// that can drift. Every body calls b.ReportAllocs: allocs/op is the
// machine-independent half of the gate and must always be recorded.

// Bench names one tier benchmark body.
type Bench struct {
	// Name is the benchmark name without the "Benchmark" prefix — the
	// key in Trajectory.Benchmarks.
	Name string
	Body func(*testing.B)
}

// Tier returns the gated micro-benchmarks in recording order.
func Tier() []Bench {
	return []Bench{
		{"GASolve", GASolve},
		{"StaticScheduler", StaticScheduler},
		{"DepgraphBuildDecompose", DepgraphBuildDecompose},
		{"FPSOfflineSimulation", FPSOfflineSimulation},
	}
}

// benchJobs generates the fixed synthetic system the micro-benchmarks
// schedule (paper generator, seed 1, the given utilisation).
func benchJobs(b *testing.B, u float64) []taskmodel.Job {
	b.Helper()
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), u)
	if err != nil {
		b.Fatal(err)
	}
	return ts.Jobs()
}

// GASolve measures the GA scheduler on a moderate system with a reduced
// population — the gate for the allocation-free fitness inner loop.
func GASolve(b *testing.B) {
	jobs := benchJobs(b, 0.5)
	opts := ga.DefaultOptions()
	opts.Population = 20
	opts.Generations = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := ga.Solve(jobs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// StaticScheduler measures the dependency-graph static scheduler on a
// crowded system.
func StaticScheduler(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	s := staticsched.New(staticsched.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// DepgraphBuildDecompose measures dependency-graph construction and
// exact/removed decomposition.
func DepgraphBuildDecompose(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := depgraph.Build(jobs)
		d := g.Decompose()
		if len(d.Exact)+len(d.Removed) != len(jobs) {
			b.Fatal("bad decomposition")
		}
	}
}

// FPSOfflineSimulation measures the simulated fixed-priority offline
// scheduler.
func FPSOfflineSimulation(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (fps.Offline{}).Schedule(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig5 returns a body regenerating Figure 5 at a reduced scale with the
// given engine parallelism. The engine's determinism invariant makes the
// serial and parallel runs produce identical results, so the ns/op ratio
// of Fig5(1) to Fig5(NumCPU) is a pure wall-clock speedup — the
// trajectory's parallel_speedup field.
func Fig5(parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := experiment.Default()
		cfg.Systems = 5
		cfg.GA.Population = 20
		cfg.GA.Generations = 15
		cfg.Parallelism = parallelism
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Fig5(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// MeasureCacheHitRate runs a small fig5 shard cold into a cell cache
// rooted at dir, reopens the store (fresh counters), runs the identical
// shard warm, and returns the warm run's hit rate — 1.0 when every cell
// was served from the cache, which is what the trajectory records and
// the gate holds.
func MeasureCacheHitRate(dir string) (float64, error) {
	p := experiment.ShardParams{Systems: 2, Seed: 1, GAPopulation: 8, GAGenerations: 5}
	cold, err := cellcache.Open(dir)
	if err != nil {
		return 0, err
	}
	if _, err := experiment.RunShardCached("fig5", p, 1, 1, 0, cold); err != nil {
		return 0, err
	}
	warm, err := cellcache.Open(dir)
	if err != nil {
		return 0, err
	}
	if _, err := experiment.RunShardCached("fig5", p, 1, 1, 0, warm); err != nil {
		return 0, err
	}
	return warm.Stats().HitRate(), nil
}
