package benchtraj

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/sched/depgraph"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/staticsched"
	"repro/internal/shard"
	"repro/internal/taskmodel"
)

// The tier benchmark bodies. bench_test.go's BenchmarkGASolve etc. and
// the `ioschedbench bench` subcommand both run exactly these functions,
// so the numbers in a BENCH_*.json trajectory are measurements of the
// same code `go test -bench` exercises — not a parallel reimplementation
// that can drift. Every body calls b.ReportAllocs: allocs/op is the
// machine-independent half of the gate and must always be recorded.

// Bench names one tier benchmark body.
type Bench struct {
	// Name is the benchmark name without the "Benchmark" prefix — the
	// key in Trajectory.Benchmarks.
	Name string
	Body func(*testing.B)
}

// Tier returns the gated micro-benchmarks in recording order.
func Tier() []Bench {
	return []Bench{
		{"GASolve", GASolve},
		{"StaticScheduler", StaticScheduler},
		{"DepgraphBuildDecompose", DepgraphBuildDecompose},
		{"FPSOfflineSimulation", FPSOfflineSimulation},
		{"DispatchPack", DispatchPack},
		{"CodecEncodeBinary", CodecEncodeBinary},
		{"CodecDecodeBinary", CodecDecodeBinary},
	}
}

// benchJobs generates the fixed synthetic system the micro-benchmarks
// schedule (paper generator, seed 1, the given utilisation).
func benchJobs(b *testing.B, u float64) []taskmodel.Job {
	b.Helper()
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), u)
	if err != nil {
		b.Fatal(err)
	}
	return ts.Jobs()
}

// GASolve measures the GA scheduler on a moderate system with a reduced
// population — the gate for the allocation-free fitness inner loop.
func GASolve(b *testing.B) {
	jobs := benchJobs(b, 0.5)
	opts := ga.DefaultOptions()
	opts.Population = 20
	opts.Generations = 10
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts.Seed = int64(i)
		if _, err := ga.Solve(jobs, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// StaticScheduler measures the dependency-graph static scheduler on a
// crowded system.
func StaticScheduler(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	s := staticsched.New(staticsched.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// DepgraphBuildDecompose measures dependency-graph construction and
// exact/removed decomposition.
func DepgraphBuildDecompose(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := depgraph.Build(jobs)
		d := g.Decompose()
		if len(d.Exact)+len(d.Removed) != len(jobs) {
			b.Fatal("bad decomposition")
		}
	}
}

// FPSOfflineSimulation measures the simulated fixed-priority offline
// scheduler.
func FPSOfflineSimulation(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (fps.Offline{}).Schedule(jobs); err != nil {
			b.Fatal(err)
		}
	}
}

// Fig5 returns a body regenerating Figure 5 at a reduced scale with the
// given engine parallelism. The engine's determinism invariant makes the
// serial and parallel runs produce identical results, so the ns/op ratio
// of Fig5(1) to Fig5(NumCPU) is a pure wall-clock speedup — the
// trajectory's parallel_speedup field.
func Fig5(parallelism int) func(*testing.B) {
	return func(b *testing.B) {
		cfg := experiment.Default()
		cfg.Systems = 5
		cfg.GA.Population = 20
		cfg.GA.Generations = 15
		cfg.Parallelism = parallelism
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := experiment.Fig5(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// DispatchPack measures cost-packed decomposition planning over the full
// selection's predicted cost surface — the per-dispatch overhead balanced
// dispatch adds before any cell runs, which must stay negligible next to
// one GA solve.
func DispatchPack(b *testing.B) {
	p := experiment.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}
	plan, err := experiment.PlanSelection(experiment.ExpAll, p)
	if err != nil {
		b.Fatal(err)
	}
	d := shard.CostPacked{Costs: plan.Costs}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Split(plan.Grids, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// makespanGrid is the skewed synthetic cost surface behind the dispatch
// makespan measurement: one run, 16 utilisation points × 4 systems,
// where system 0 costs 10× the others (a GA column next to cheap
// heuristic baselines) on top of a mild utilisation ramp. The system
// axis is exactly where round-robin's (point·systems + system) mod
// shards stride degenerates: with the shard count dividing the system
// count, one shard inherits the entire expensive column.
func makespanGrid() (shard.Grid, []float64) {
	g := shard.Grid{Points: 16, Systems: 4}
	costs := make([]float64, g.Cells())
	for o := 0; o < g.Points; o++ {
		ramp := 1 + float64(o)/float64(g.Points-1)
		for i := 0; i < g.Systems; i++ {
			c := ramp
			if i == 0 {
				c *= 10
			}
			costs[o*g.Systems+i] = c
		}
	}
	return g, costs
}

// MeasureDispatchMakespan returns the simulated dispatch makespan ratio
// of round-robin over cost-packed decomposition on the skewed synthetic
// grid split 4 ways: max-part-cost(roundrobin) / max-part-cost(cost).
// Pure arithmetic over the decomposition code — identical on every
// machine — so the trajectory gate holds it strictly. A ratio above 1
// means cost packing finishes the sweep earlier than fixed shares under
// skewed per-cell costs.
func MeasureDispatchMakespan() (float64, error) {
	g, costs := makespanGrid()
	const parts = 4
	makespan := func(d shard.Decomposition) (float64, error) {
		assign, err := d.Split([]shard.Grid{g}, parts)
		if err != nil {
			return 0, err
		}
		sums := make([]float64, parts)
		for gi, part := range assign[0] {
			sums[part] += costs[gi]
		}
		max := 0.0
		for _, s := range sums {
			if s > max {
				max = s
			}
		}
		return max, nil
	}
	rr, err := makespan(shard.RoundRobin{})
	if err != nil {
		return 0, err
	}
	cp, err := makespan(shard.CostPacked{Costs: [][]float64{costs}})
	if err != nil {
		return 0, err
	}
	if cp <= 0 {
		return 0, fmt.Errorf("benchtraj: cost-packed makespan is zero")
	}
	return rr / cp, nil
}

// MeasureReplayJitter runs the jitter experiment at a reduced scale —
// one system per utilisation point, a short horizon, executors pinned
// where the platform allows — and pools its points into one delivered-
// timing baseline. Unlike every other measurement here it is
// non-reproducible by design: the number is this machine's, which is
// why the trajectory stores it next to the host fingerprint and the
// gate never compares it.
func MeasureReplayJitter() (*ReplayJitterMeasurement, error) {
	p := experiment.ShardParams{
		Seed:          1,
		ReplaySystems: 1,
		ReplayCapNs:   int64(5 * time.Millisecond),
		ReplayWarmup:  16,
	}
	res, err := experiment.Run(experiment.ExpJitter, p.Context(1))
	if err != nil {
		return nil, err
	}
	jr, ok := res.(*experiment.JitterResult)
	if !ok {
		return nil, fmt.Errorf("benchtraj: jitter returned %T", res)
	}
	m := &ReplayJitterMeasurement{}
	var meanSum float64
	var exact, missed float64
	for _, pt := range jr.Points {
		m.Dispatched += pt.Dispatched
		n := float64(pt.Dispatched)
		exact += pt.Exact * n
		missed += pt.Missed * n
		meanSum += pt.MeanNs * n
		if pt.P99Ns > m.P99Ns {
			m.P99Ns = pt.P99Ns
		}
		if pt.MaxNs > m.MaxNs {
			m.MaxNs = pt.MaxNs
		}
	}
	if m.Dispatched > 0 {
		n := float64(m.Dispatched)
		m.Exact = exact / n
		m.Missed = missed / n
		m.MeanNs = meanSum / n
	}
	return m, nil
}

// MeasureCacheHitRate runs a small fig5 shard cold into a cell cache
// rooted at dir, reopens the store (fresh counters), runs the identical
// shard warm, and returns the warm run's hit rate — 1.0 when every cell
// was served from the cache, which is what the trajectory records and
// the gate holds.
func MeasureCacheHitRate(dir string) (float64, error) {
	p := experiment.ShardParams{Systems: 2, Seed: 1, GAPopulation: 8, GAGenerations: 5}
	cold, err := cellcache.Open(dir)
	if err != nil {
		return 0, err
	}
	if _, err := experiment.RunShardCached("fig5", p, 1, 1, 0, cold); err != nil {
		return 0, err
	}
	warm, err := cellcache.Open(dir)
	if err != nil {
		return 0, err
	}
	if _, err := experiment.RunShardCached("fig5", p, 1, 1, 0, warm); err != nil {
		return 0, err
	}
	return warm.Stats().HitRate(), nil
}
