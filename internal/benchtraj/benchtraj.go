// Package benchtraj is the benchmark-trajectory layer: one shared
// definition of the repo's tier benchmark bodies (run identically by
// `go test -bench` via bench_test.go and by the `ioschedbench bench`
// subcommand via testing.Benchmark), the BENCH_*.json trajectory file
// schema those runs write (ns/op, allocs/op, bytes/op per benchmark,
// plus the Figure 5 serial/parallel speedup and the cell-cache warm
// hit rate), and the comparison rule the CI bench gate applies.
//
// Gating across machines: allocs/op is machine-independent — it is
// always gated against the committed baseline. ns/op is gated only when
// the current host fingerprint (GOOS/GOARCH/CPU count/Go version)
// matches the baseline's, so a baseline produced on the CI runner class
// gates CI wall-clock without false-failing every developer laptop.
package benchtraj

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
)

// Version identifies the trajectory file schema.
const Version = 1

// Measurement is one benchmark's recorded cost.
type Measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Host is the machine fingerprint a trajectory was measured on. ns/op
// comparisons apply only between equal fingerprints.
type Host struct {
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	GoVersion string `json:"go_version"`
}

// CurrentHost returns this process's fingerprint.
func CurrentHost() Host {
	return Host{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
	}
}

// Trajectory is one BENCH_*.json snapshot.
type Trajectory struct {
	Version int `json:"version"`
	// Benchmarks maps benchmark name (without the "Benchmark" prefix) to
	// its measurement.
	Benchmarks map[string]Measurement `json:"benchmarks"`
	// ParallelSpeedup is the Figure 5 serial ns/op divided by the
	// one-worker-per-CPU ns/op — the wall-clock speedup the engine's
	// determinism invariant makes a pure measurement (the two runs
	// produce identical results).
	ParallelSpeedup float64 `json:"parallel_speedup"`
	// CacheHitRate is the warm-run hit rate of the cell cache benchmark
	// scenario (1 = every cell served from the cache).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// DispatchMakespanRatio is the simulated round-robin over cost-packed
	// dispatch makespan on a skewed synthetic cost grid
	// (MeasureDispatchMakespan) — deterministic arithmetic, identical on
	// every machine, so it is gated strictly.
	DispatchMakespanRatio float64 `json:"dispatch_makespan_ratio,omitempty"`
	// CodecBytesPerCellV1/V2 are the per-cell sizes of the v1 JSON and
	// v2 binary shard containers over the synthetic paper-scale file
	// (MeasureCodecSizes) — deterministic on every machine. The gate
	// additionally holds v2 at or below half of v1: the binary codec's
	// reason to exist is the size reduction, so losing it is a
	// regression even if both numbers move together.
	CodecBytesPerCellV1 float64 `json:"codec_bytes_per_cell_v1,omitempty"`
	CodecBytesPerCellV2 float64 `json:"codec_bytes_per_cell_v2,omitempty"`
	// ReplayJitter is the delivered-timing baseline of a tiny wall-clock
	// replay (MeasureReplayJitter). It is a measurement of the host the
	// trajectory's fingerprint names — recorded for trend-watching, never
	// gated: Compare ignores it, because wall-clock jitter on a shared CI
	// runner is not a property of the code.
	ReplayJitter *ReplayJitterMeasurement `json:"replay_jitter,omitempty"`
	Host         Host                     `json:"host"`
}

// ReplayJitterMeasurement is one recorded replay baseline: the pooled
// dispatch-deviation distribution of the jitter experiment at a reduced
// scale.
type ReplayJitterMeasurement struct {
	Dispatched int     `json:"dispatched"`
	Exact      float64 `json:"exact"`
	Missed     float64 `json:"missed"`
	MeanNs     float64 `json:"mean_ns"`
	P99Ns      int64   `json:"p99_ns"`
	MaxNs      int64   `json:"max_ns"`
}

// WriteFile writes the trajectory as indented JSON.
func (t *Trajectory) WriteFile(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("benchtraj: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile reads a trajectory file.
func ReadFile(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchtraj: %w", err)
	}
	var t Trajectory
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("benchtraj: %s: %w", path, err)
	}
	if t.Version > Version {
		return nil, fmt.Errorf("benchtraj: %s is schema version %d, this build reads %d", path, t.Version, Version)
	}
	return &t, nil
}

// Compare gates current against baseline with the given relative
// tolerance (0.15 = +15%) and returns one line per regression (empty =
// gate passes). allocs/op is always compared — it is a property of the
// code, not the machine. ns/op and the parallel speedup are compared
// only when the host fingerprints match. A benchmark present in the
// baseline but missing from current is a regression (the gate must not
// pass because a measurement silently disappeared); new benchmarks in
// current are fine — they join the baseline when it is regenerated.
func Compare(baseline, current *Trajectory, tolerance float64) []string {
	var regs []string
	sameHost := baseline.Host == current.Host
	names := make([]string, 0, len(baseline.Benchmarks))
	for name := range baseline.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := baseline.Benchmarks[name]
		c, ok := current.Benchmarks[name]
		if !ok {
			regs = append(regs, fmt.Sprintf("%s: present in baseline but not measured", name))
			continue
		}
		if exceeds(float64(c.AllocsPerOp), float64(b.AllocsPerOp), tolerance) {
			regs = append(regs, fmt.Sprintf("%s: allocs/op %d exceeds baseline %d by more than %.0f%%",
				name, c.AllocsPerOp, b.AllocsPerOp, 100*tolerance))
		}
		if sameHost && exceeds(c.NsPerOp, b.NsPerOp, tolerance) {
			regs = append(regs, fmt.Sprintf("%s: ns/op %.0f exceeds baseline %.0f by more than %.0f%%",
				name, c.NsPerOp, b.NsPerOp, 100*tolerance))
		}
	}
	if sameHost && baseline.ParallelSpeedup > 0 && current.ParallelSpeedup > 0 &&
		current.ParallelSpeedup < baseline.ParallelSpeedup*(1-tolerance) {
		regs = append(regs, fmt.Sprintf("parallel speedup %.2fx fell below baseline %.2fx by more than %.0f%%",
			current.ParallelSpeedup, baseline.ParallelSpeedup, 100*tolerance))
	}
	if baseline.CacheHitRate > 0 && current.CacheHitRate < baseline.CacheHitRate {
		regs = append(regs, fmt.Sprintf("cache hit rate %.2f fell below baseline %.2f",
			current.CacheHitRate, baseline.CacheHitRate))
	}
	// Deterministic on every machine, so any decrease is a code change
	// that made the balanced decomposition pack worse.
	if baseline.DispatchMakespanRatio > 0 && current.DispatchMakespanRatio > 0 &&
		current.DispatchMakespanRatio < baseline.DispatchMakespanRatio {
		regs = append(regs, fmt.Sprintf("dispatch makespan ratio %.3f fell below baseline %.3f",
			current.DispatchMakespanRatio, baseline.DispatchMakespanRatio))
	}
	// Codec sizes are deterministic too. Two rules: the measurement must
	// not silently disappear once the baseline has it, and the binary
	// container must keep at least its 2x size advantage on the
	// paper-scale grid (a hard cap, not a drift tolerance).
	if baseline.CodecBytesPerCellV2 > 0 {
		switch {
		case current.CodecBytesPerCellV2 == 0 || current.CodecBytesPerCellV1 == 0:
			regs = append(regs, "codec bytes-per-cell: present in baseline but not measured")
		case current.CodecBytesPerCellV2 > 0.5*current.CodecBytesPerCellV1:
			regs = append(regs, fmt.Sprintf("codec bytes-per-cell: binary %.1f exceeds half of json %.1f (ratio %.3f, cap 0.5)",
				current.CodecBytesPerCellV2, current.CodecBytesPerCellV1,
				current.CodecBytesPerCellV2/current.CodecBytesPerCellV1))
		}
	}
	return regs
}

// exceeds reports whether got is more than tolerance above want. A zero
// baseline tolerates nothing: the measurement reached zero once, so any
// nonzero value is a regression.
func exceeds(got, want, tolerance float64) bool {
	if want == 0 {
		return got > 0
	}
	return got > want*(1+tolerance)
}
