package benchtraj

// The shard-codec benchmarks and the bytes-per-cell measurement behind
// the trajectory's codec_bytes_per_cell_* fields. Both run over one
// synthetic paper-scale-shaped shard file — the fig5 and figq grids at
// the paper's 1000 systems per point, with payloads shaped exactly like
// the real experiments' (the structs below mirror the experiment
// package's payload types tag for tag, so the registered native codecs
// pack them). Sizes are deterministic functions of the code, identical
// on every machine, so Compare holds the v2/v1 ratio as a hard cap.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/shard"
)

// codecFig5Payload mirrors the fig5 experiment's cell payload
// (experiment.fig5Outcome is unexported); identical JSON tags in
// identical order make the native codec's re-marshal byte-identical.
type codecFig5Payload struct {
	Offline bool `json:"offline"`
	Online  bool `json:"online"`
	GPIOCP  bool `json:"gpiocp"`
	Static  bool `json:"static"`
	GA      bool `json:"ga"`
}

// codecQPayload mirrors experiment.qOutcome.
type codecQPayload struct {
	Psi float64 `json:"psi"`
	Ups float64 `json:"upsilon"`
	OK  bool    `json:"ok"`
}

// codecFigqPayload mirrors experiment.figqOutcome.
type codecFigqPayload struct {
	Offline codecQPayload `json:"offline"`
	CP      codecQPayload `json:"gpiocp"`
	Static  codecQPayload `json:"static"`
	GA      codecQPayload `json:"ga"`
}

// codecBenchFile builds the synthetic paper-scale shard file: the fig5
// grid (15 utilisation points × 1000 systems) and the fig6 grid (5 ×
// 1000, the figq cell payload) with pseudo-random payloads under the
// real experiments' names and payload versions, so EncodeBinary packs
// them with the registered native codecs exactly as a real
// -paperscale -codec binary run would.
func codecBenchFile() (*shard.File, error) {
	rng := rand.New(rand.NewSource(1))
	f := &shard.File{
		Version:   shard.FormatVersion,
		Selection: "all",
		Shards:    1,
		Index:     0,
		Params:    json.RawMessage(`{"paperscale":true,"seed":1}`),
	}

	fig5 := shard.Run{Experiment: "fig5", Grid: shard.Grid{Points: 15, Systems: 1000}, PayloadVersion: 1}
	for p := 0; p < fig5.Grid.Points; p++ {
		// Schedulability falls with utilisation, like the real figure.
		prob := 1 - float64(p)/float64(fig5.Grid.Points)
		for s := 0; s < fig5.Grid.Systems; s++ {
			ok := rng.Float64() < prob
			data, err := json.Marshal(codecFig5Payload{
				Offline: ok, Online: ok && rng.Intn(4) > 0, GPIOCP: ok,
				Static: ok && rng.Intn(8) > 0, GA: ok || rng.Intn(16) == 0,
			})
			if err != nil {
				return nil, err
			}
			fig5.Cells = append(fig5.Cells, shard.Cell{Point: p, System: s, Seed: rng.Int63(), Data: data})
		}
	}
	f.Runs = append(f.Runs, fig5)

	q := func() codecQPayload {
		return codecQPayload{Psi: rng.Float64(), Ups: rng.Float64(), OK: rng.Intn(4) > 0}
	}
	figq := shard.Run{Experiment: "fig6", Grid: shard.Grid{Points: 5, Systems: 1000}, PayloadVersion: 1}
	for p := 0; p < figq.Grid.Points; p++ {
		for s := 0; s < figq.Grid.Systems; s++ {
			data, err := json.Marshal(codecFigqPayload{Offline: q(), CP: q(), Static: q(), GA: q()})
			if err != nil {
				return nil, err
			}
			figq.Cells = append(figq.Cells, shard.Cell{Point: p, System: s, Seed: rng.Int63(), Data: data})
		}
	}
	f.Runs = append(f.Runs, figq)
	return f, nil
}

// codecRegistered reports whether the experiment payload codecs the
// bench file relies on are registered (they live in internal/experiment
// init; any caller that imports the experiment package has them).
func codecRegistered() error {
	for _, key := range []struct {
		name    string
		version int
	}{{"fig5", 1}, {"fig6", 1}} {
		if _, ok := shard.LookupPayloadCodec(key.name, key.version); !ok {
			return fmt.Errorf("benchtraj: payload codec for %q v%d not registered (import repro/internal/experiment)", key.name, key.version)
		}
	}
	return nil
}

// CodecEncodeBinary measures encoding the paper-scale file into the v2
// binary container (native columnar payload packing included).
func CodecEncodeBinary(b *testing.B) {
	f, err := codecBenchFile()
	if err != nil {
		b.Fatal(err)
	}
	if err := codecRegistered(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.EncodeBinary(); err != nil {
			b.Fatal(err)
		}
	}
}

// CodecDecodeBinary measures decoding the v2 binary container back into
// cells (native column unpacking and payload re-marshalling included).
func CodecDecodeBinary(b *testing.B) {
	f, err := codecBenchFile()
	if err != nil {
		b.Fatal(err)
	}
	if err := codecRegistered(); err != nil {
		b.Fatal(err)
	}
	bin, err := f.EncodeBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shard.Decode(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// CodecSizes is the bytes-per-cell measurement of the two encodings
// over the synthetic paper-scale file.
type CodecSizes struct {
	// Cells is the file's total cell count.
	Cells int
	// V1BytesPerCell and V2BytesPerCell are total encoded file size
	// divided by cell count for the v1 JSON and v2 binary containers.
	V1BytesPerCell float64
	V2BytesPerCell float64
}

// Ratio returns v2 over v1 bytes per cell (smaller is better).
func (s CodecSizes) Ratio() float64 {
	if s.V1BytesPerCell == 0 {
		return 0
	}
	return s.V2BytesPerCell / s.V1BytesPerCell
}

// MeasureCodecSizes encodes the synthetic paper-scale file both ways
// and returns the bytes-per-cell of each container — after verifying
// the two encodings decode to byte-identical v1 renders, so the size
// claim is never measured off a lossy encode.
func MeasureCodecSizes() (CodecSizes, error) {
	f, err := codecBenchFile()
	if err != nil {
		return CodecSizes{}, err
	}
	if err := codecRegistered(); err != nil {
		return CodecSizes{}, err
	}
	v1, err := f.Encode()
	if err != nil {
		return CodecSizes{}, err
	}
	v2, err := f.EncodeBinary()
	if err != nil {
		return CodecSizes{}, err
	}
	decoded, err := shard.Decode(v2)
	if err != nil {
		return CodecSizes{}, err
	}
	rendered, err := decoded.Encode()
	if err != nil {
		return CodecSizes{}, err
	}
	if string(rendered) != string(v1) {
		return CodecSizes{}, fmt.Errorf("benchtraj: binary round trip does not reproduce the v1 render")
	}
	cells := f.CellCount()
	if cells == 0 {
		return CodecSizes{}, fmt.Errorf("benchtraj: empty bench file")
	}
	return CodecSizes{
		Cells:          cells,
		V1BytesPerCell: float64(len(v1)) / float64(cells),
		V2BytesPerCell: float64(len(v2)) / float64(cells),
	}, nil
}
