package benchtraj

import (
	"strings"
	"testing"
)

// TestMeasureCodecSizes pins the size claim the bench gate enforces: on
// the synthetic paper-scale file the binary container costs at most
// half the JSON one per cell (the committed baselines record ~1/10).
func TestMeasureCodecSizes(t *testing.T) {
	sizes, err := MeasureCodecSizes()
	if err != nil {
		t.Fatal(err)
	}
	if sizes.Cells != 20000 {
		t.Fatalf("bench file has %d cells, want 20000 (fig5 15x1000 + figq 5x1000)", sizes.Cells)
	}
	if sizes.V1BytesPerCell <= 0 || sizes.V2BytesPerCell <= 0 {
		t.Fatalf("degenerate sizes: %+v", sizes)
	}
	if r := sizes.Ratio(); r > 0.5 {
		t.Fatalf("v2/v1 bytes-per-cell ratio %.3f exceeds the 0.5 cap (v1 %.1f, v2 %.1f)",
			r, sizes.V1BytesPerCell, sizes.V2BytesPerCell)
	}
}

func TestCompareCodecSizesGate(t *testing.T) {
	base := sample()
	base.CodecBytesPerCellV1 = 300
	base.CodecBytesPerCellV2 = 30

	// Clean pass: measured, and comfortably under the cap.
	cur := sample()
	cur.CodecBytesPerCellV1 = 310
	cur.CodecBytesPerCellV2 = 32
	if regs := Compare(base, cur, 0.15); len(regs) != 0 {
		t.Fatalf("clean codec sizes flagged: %v", regs)
	}

	// Missing measurement once the baseline has one is a regression.
	cur = sample()
	regs := Compare(base, cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "not measured") {
		t.Fatalf("missing codec measurement not flagged: %v", regs)
	}

	// Above the hard 0.5x cap is a regression regardless of tolerance.
	cur = sample()
	cur.CodecBytesPerCellV1 = 300
	cur.CodecBytesPerCellV2 = 200
	regs = Compare(base, cur, 10.0)
	if len(regs) != 1 || !strings.Contains(regs[0], "cap 0.5") {
		t.Fatalf("over-cap codec ratio not flagged: %v", regs)
	}

	// No baseline measurement: nothing to gate.
	if regs := Compare(sample(), sample(), 0.15); len(regs) != 0 {
		t.Fatalf("codec gate fired without a baseline: %v", regs)
	}
}
