package benchtraj

import (
	"path/filepath"
	"strings"
	"testing"
)

func sample() *Trajectory {
	return &Trajectory{
		Version: Version,
		Benchmarks: map[string]Measurement{
			"GASolve":         {NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 4096},
			"StaticScheduler": {NsPerOp: 500, AllocsPerOp: 0, BytesPerOp: 0},
		},
		ParallelSpeedup:       3.0,
		CacheHitRate:          1.0,
		DispatchMakespanRatio: 1.5,
		Host:                  CurrentHost(),
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	want := sample()
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || got.Host != want.Host ||
		got.ParallelSpeedup != want.ParallelSpeedup || got.CacheHitRate != want.CacheHitRate {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	if got.Benchmarks["GASolve"] != want.Benchmarks["GASolve"] {
		t.Fatalf("GASolve measurement mismatch: %+v", got.Benchmarks["GASolve"])
	}
}

func TestCompareCleanPass(t *testing.T) {
	if regs := Compare(sample(), sample(), 0.15); len(regs) != 0 {
		t.Fatalf("identical trajectories must pass, got %v", regs)
	}
}

func TestCompareAllocRegressionGatedEverywhere(t *testing.T) {
	cur := sample()
	cur.Host.NumCPU++ // different machine: ns/op gate off, allocs gate on
	m := cur.Benchmarks["GASolve"]
	m.AllocsPerOp = 200
	m.NsPerOp = 1e9 // would regress ns/op, but host differs
	cur.Benchmarks["GASolve"] = m
	regs := Compare(sample(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("want exactly the allocs/op regression, got %v", regs)
	}
}

func TestCompareNsGatedOnSameHostOnly(t *testing.T) {
	cur := sample()
	m := cur.Benchmarks["GASolve"]
	m.NsPerOp = 2000
	cur.Benchmarks["GASolve"] = m
	if regs := Compare(sample(), cur, 0.15); len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("same host must gate ns/op, got %v", regs)
	}
	cur.Host.GoVersion = "go0.0"
	if regs := Compare(sample(), cur, 0.15); len(regs) != 0 {
		t.Fatalf("different host must not gate ns/op, got %v", regs)
	}
}

func TestCompareZeroBaselineToleratesNothing(t *testing.T) {
	cur := sample()
	m := cur.Benchmarks["StaticScheduler"]
	m.AllocsPerOp = 1
	cur.Benchmarks["StaticScheduler"] = m
	if regs := Compare(sample(), cur, 0.15); len(regs) != 1 {
		t.Fatalf("0 -> 1 allocs/op must regress, got %v", regs)
	}
}

func TestCompareMissingBenchmarkRegresses(t *testing.T) {
	cur := sample()
	delete(cur.Benchmarks, "GASolve")
	regs := Compare(sample(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "not measured") {
		t.Fatalf("missing benchmark must regress, got %v", regs)
	}
}

func TestCompareSpeedupAndHitRate(t *testing.T) {
	cur := sample()
	cur.ParallelSpeedup = 2.0 // below 3.0 * 0.85
	cur.CacheHitRate = 0.5
	regs := Compare(sample(), cur, 0.15)
	if len(regs) != 2 {
		t.Fatalf("want speedup + hit-rate regressions, got %v", regs)
	}
}

func TestCompareDispatchMakespanStrict(t *testing.T) {
	cur := sample()
	cur.ParallelSpeedup = 0 // not measured: must not regress
	cur.DispatchMakespanRatio = 1.499
	regs := Compare(sample(), cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "makespan") {
		t.Fatalf("any makespan-ratio decrease must regress, got %v", regs)
	}
	cur.DispatchMakespanRatio = 1.5
	if regs := Compare(sample(), cur, 0.15); len(regs) != 0 {
		t.Fatalf("equal makespan ratio must pass, got %v", regs)
	}
}

// TestMeasureDispatchMakespan pins the measured quantity itself: on the
// skewed synthetic grid, cost packing must beat fixed round-robin shares,
// and the ratio must be deterministic.
func TestMeasureDispatchMakespan(t *testing.T) {
	r1, err := MeasureDispatchMakespan()
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 1 {
		t.Fatalf("makespan ratio = %v, want > 1 (cost packing must beat round-robin on a skewed grid)", r1)
	}
	r2, err := MeasureDispatchMakespan()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatalf("makespan ratio not deterministic: %v vs %v", r1, r2)
	}
}

func TestCompareTolerancePasses(t *testing.T) {
	cur := sample()
	m := cur.Benchmarks["GASolve"]
	m.NsPerOp = 1100    // +10% < 15%
	m.AllocsPerOp = 110 // +10% < 15%
	cur.Benchmarks["GASolve"] = m
	if regs := Compare(sample(), cur, 0.15); len(regs) != 0 {
		t.Fatalf("within-tolerance drift must pass, got %v", regs)
	}
}
