package dispatch

// Observed-cost refinement: the predicted per-cell cost model
// (experiment.PlanSelection) only has to be proportional to wall-clock to
// pack well, but a prior journal of the same run knows better — each
// completed computed batch records its cell spec and its realised
// duration. refineCosts folds those observations back into the model, so
// a resume (or a re-run over the same directory) packs the remaining
// cells against measured rates instead of predictions.

import (
	"repro/internal/experiment"
	"repro/internal/shard"
)

// refineCosts returns plan.Costs refined by the observed per-cell
// wall-clock of prior's completed batches; with no prior journal or no
// usable observations it returns plan.Costs unchanged.
//
// Each done batch with a recorded cell spec, cell count and duration
// contributes its mean per-cell rate to every utilisation point it
// touched; a cell at an observed point takes the cell-count-weighted mean
// of those rates, and a cell at an unobserved point keeps its predicted
// cost scaled onto the observed unit (total observed seconds over total
// predicted cost of the observed cells), so the two kinds of estimate
// stay comparable inside one packing.
func refineCosts(prior *JournalState, plan *experiment.RunPlan) [][]float64 {
	if prior == nil {
		return plan.Costs
	}
	byName := make(map[string]int, len(plan.Names))
	for ri, name := range plan.Names {
		byName[name] = ri
	}
	type acc struct {
		sum float64
		n   int
	}
	obs := make([]map[int]acc, len(plan.Names))
	for ri := range obs {
		obs[ri] = make(map[int]acc)
	}
	obsDur, obsPred := 0.0, 0.0
	for _, sh := range prior.ShardStates {
		if sh.State != ShardDone || sh.Duration <= 0 || sh.Spec == "" || sh.Cells <= 0 {
			continue
		}
		names, cells, err := shard.ParseCellSpec(sh.Spec)
		if err != nil {
			continue
		}
		rate := sh.Duration.Seconds() / float64(sh.Cells)
		for si, name := range names {
			ri, ok := byName[name]
			if !ok {
				continue
			}
			for _, g := range cells[si] {
				if g < 0 || g >= len(plan.Costs[ri]) {
					continue
				}
				point := g / plan.Grids[ri].Systems
				a := obs[ri][point]
				a.sum += rate
				a.n++
				obs[ri][point] = a
				obsDur += rate
				obsPred += plan.Costs[ri][g]
			}
		}
	}
	if obsDur <= 0 {
		return plan.Costs
	}
	scale := 1.0
	if obsPred > 0 {
		scale = obsDur / obsPred
	}
	refined := make([][]float64, len(plan.Costs))
	for ri := range plan.Costs {
		refined[ri] = make([]float64, len(plan.Costs[ri]))
		for g, c := range plan.Costs[ri] {
			if a := obs[ri][g/plan.Grids[ri].Systems]; a.n > 0 {
				refined[ri][g] = a.sum / float64(a.n)
			} else {
				refined[ri][g] = c * scale
			}
		}
	}
	return refined
}
