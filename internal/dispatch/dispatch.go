package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/shard"
)

// Spec describes one dispatched run: which experiment selection, with
// which parameters, split into how many shards.
type Spec struct {
	// Selection is the experiment selection ("all" or one grid
	// experiment's name); "" means "all".
	Selection string
	// Params is the run parameterisation recorded in every shard file.
	// The driver normalises it (experiment.ShardParams.Normalised), so
	// zero values select the same defaults the CLI's flags do.
	Params experiment.ShardParams
	// Shards is the number of shards the run is split into.
	Shards int
}

// The balance modes: how the driver decomposes the selection's cells into
// units of dispatched work.
const (
	// BalanceRoundRobin is the classic decomposition — one shard per
	// index, each owning the cells with (point·systems + system) mod
	// shards == index. The default; "" selects it.
	BalanceRoundRobin = "roundrobin"
	// BalanceCost packs cells into batches of near-equal predicted cost
	// (experiment.PlanSelection's per-cell model, refined by observed
	// wall-clock from a prior journal on resume). The merged result is
	// byte-identical to round-robin's: decompositions only move cells
	// between workers, never change them.
	BalanceCost = "cost"
)

// normalisedBalance resolves and validates a balance mode ("" means
// round-robin).
func normalisedBalance(b string) (string, error) {
	switch b {
	case "", BalanceRoundRobin:
		return BalanceRoundRobin, nil
	case BalanceCost:
		return BalanceCost, nil
	}
	return "", fmt.Errorf("dispatch: unknown balance %q (want %q or %q)", b, BalanceRoundRobin, BalanceCost)
}

// normalised validates the spec and returns it with the selection and
// params resolved, alongside the compact params JSON every shard file of
// the run must record and the canonical run names of the selection.
func (s Spec) normalised() (Spec, []byte, []string, error) {
	if s.Selection == "" {
		s.Selection = experiment.ExpAll
	}
	runNames, err := experiment.SelectionRuns(s.Selection)
	if err != nil {
		return Spec{}, nil, nil, err
	}
	if _, err := shard.NewPlan(s.Shards, 0); err != nil {
		return Spec{}, nil, nil, err
	}
	s.Params = s.Params.Normalised()
	params, err := json.Marshal(s.Params)
	if err != nil {
		return Spec{}, nil, nil, fmt.Errorf("dispatch: encode params: %w", err)
	}
	return s, params, runNames, nil
}

// Normalised returns the spec with every default resolved, its compact
// canonical params encoding (the bytes the journal plan event records),
// and the selection's canonical run names. Exported so other drivers of
// the dispatch protocol (the coordinator service in internal/coord)
// normalise a run exactly the way Run does.
func (s Spec) Normalised() (Spec, []byte, []string, error) {
	return s.normalised()
}

// baseArgs returns the ioschedbench run flags shared by every worker
// invocation of the spec — selection and parameters with every default
// resolved, without any decomposition flags. It returns an error for
// params no ioschedbench flag can express (multi-device or motivation
// overrides), so a library-configured spec that a CLI worker could not
// reproduce fails before any work is dispatched rather than at params
// validation after it.
func (s Spec) baseArgs() ([]string, error) {
	p := s.Params.Normalised()
	base := experiment.ShardParams{Seed: p.Seed, PaperScale: p.PaperScale}.Normalised()
	if p.MultiDeviceU != base.MultiDeviceU || p.MotivationWrites != base.MotivationWrites ||
		fmt.Sprint(p.MultiDeviceCounts) != fmt.Sprint(base.MultiDeviceCounts) {
		return nil, fmt.Errorf("dispatch: params override multi-device or motivation settings that have no ioschedbench flag")
	}
	args := []string{
		"-experiment", s.Selection,
		"-seed", strconv.FormatInt(p.Seed, 10),
		"-systems", strconv.Itoa(p.Systems),
		"-gapop", strconv.Itoa(p.GAPopulation),
		"-gagens", strconv.Itoa(p.GAGenerations),
		"-ablation-u", strconv.FormatFloat(p.AblationU, 'g', -1, 64),
	}
	if p.PaperScale {
		args = append(args, "-paperscale")
	}
	return args, nil
}

// WorkerArgs returns the ioschedbench command-line arguments that make a
// worker process evaluate shard index of the spec: the run flags with
// every default resolved, plus -shards/-shard-index. The output flag is
// deliberately absent — LocalProcWorker appends "-out <path>" and
// CmdWorker templates choose their own file contract — as is -parallel,
// which is host-local and never changes results.
func (s Spec) WorkerArgs(index int) ([]string, error) {
	args, err := s.baseArgs()
	if err != nil {
		return nil, err
	}
	return append(args, "-shards", strconv.Itoa(s.Shards), "-shard-index", strconv.Itoa(index)), nil
}

// BatchWorkerArgs returns the ioschedbench arguments that make a worker
// evaluate exactly the cells of the given cell spec
// (shard.FormatCellSpec) — the balanced dispatch counterpart of
// WorkerArgs, producing a cell-batch file instead of a round-robin shard.
func (s Spec) BatchWorkerArgs(cellSpec string) ([]string, error) {
	args, err := s.baseArgs()
	if err != nil {
		return nil, err
	}
	return append(args, "-cells", cellSpec), nil
}

// Options tunes the driver; the zero value is a sensible default.
type Options struct {
	// MaxAttempts bounds how often one shard is tried before the whole
	// dispatch fails; <= 0 selects 3 (one run plus two retries). Steal
	// attempts count against the same budget.
	MaxAttempts int
	// AttemptTimeout bounds one attempt's wall-clock time; an attempt
	// over budget is killed (via its context) and re-queued like any
	// other failure. 0 means no per-attempt bound.
	AttemptTimeout time.Duration
	// RetryDelay pauses a failed shard before it is re-queued, so a pool
	// whose failures are transient (a rebooting host) does not burn its
	// attempt budget in milliseconds. 0 re-queues immediately.
	RetryDelay time.Duration
	// Balance selects the decomposition: BalanceRoundRobin (default) or
	// BalanceCost.
	Balance string
	// Steal lets idle workers start a second concurrent copy of the
	// heaviest still-running batch once the queue drains. The first
	// completion wins; the duplicate is discarded (never merged twice —
	// batches are deduplicated by cell key). Stolen copies write
	// <path>.s<attempt>, so concurrent attempts never collide on a file.
	Steal bool
	// Dir is the working directory for the shard files and the journal.
	// "" uses a fresh temporary directory that is removed after a
	// successful merge — set Dir to keep the files and to make an
	// interrupted dispatch resumable.
	Dir string
	// Logf receives structured progress and retry lines; nil discards
	// them. It is called from multiple goroutines and must be safe for
	// concurrent use (log.Printf and friends are).
	Logf func(format string, args ...any)
	// Progress receives the typed progress-event stream (schema version
	// ProgressVersion): plan, batch, resumed, cached, attempt, steal,
	// done, fail, partial and merged events mirroring the journal,
	// suitable for live status displays (feed them to a Tracker) without
	// parsing log lines. Events are delivered from multiple goroutines,
	// so the handler must be safe for concurrent use. nil disables the
	// stream.
	Progress func(ProgressEvent)
	// PartialEvery, when > 0, periodically merges the shards completed so
	// far into <Dir>/partial.json — a provisional partial cover file that
	// "ioschedbench merge -partial" (or shard.MergePartial) renders while
	// the dispatch is still running, and that a MergePartial over the
	// remaining shards grows into the full, byte-identical result. The
	// file is refreshed in place and removed after the final merge.
	// Requires Dir (a temporary working directory would discard it) and
	// round-robin balance (partial merges read classic shard files).
	PartialEvery time.Duration
	// Cache, when non-nil, is the cell cache consulted before a shard is
	// queued: a shard whose cells the cache fully holds is written from
	// the cache (journaled as "cached") instead of dispatched to a
	// worker, and every validated worker output is deposited back, so
	// overlapping runs recompute only their frontier. The cached file is
	// re-validated exactly like a worker's before it is accepted.
	Cache *cellcache.Store
	// Codec selects the encoding of the files this driver itself writes —
	// cache-materialised shard/batch files and the periodic partial cover
	// (shard.EncodingJSON when ""). It does not constrain the workers:
	// worker outputs are accepted in either encoding (shard.ReadFile
	// auto-detects), so a pool can mix -codec settings freely.
	Codec string
}

// Attempt records one worker attempt at one shard or batch.
type Attempt struct {
	// Shard and Attempt identify the try: attempt n is the n-th time this
	// shard ran, starting at 1.
	Shard   int
	Attempt int
	// Steal marks a duplicate attempt started by work stealing.
	Steal bool
	// Worker is the name of the worker that ran it.
	Worker string
	// Err is the failure ("" for success): the worker's error, or the
	// validation error for a corrupt or partial file.
	Err string
}

// Result reports a completed dispatch.
type Result struct {
	// Merged is the complete single-shard equivalent file — byte-identical
	// (once encoded) to what the unsharded run would have produced.
	Merged *shard.File
	// Dir is the working directory holding the shard files and journal;
	// "" if the driver used (and removed) a temporary directory.
	Dir string
	// ShardPaths are the per-shard (or per-batch) winning file paths in
	// id order; nil if the working directory was temporary.
	ShardPaths []string
	// Shards counts the units merged: the shard count for a round-robin
	// dispatch, the (possibly re-split) batch count for a balanced one.
	Shards int
	// Resumed counts shards satisfied from the journal without running;
	// Cached counts shards satisfied from the cell cache without running;
	// Ran counts shards executed by this invocation; Retries counts
	// failed attempts that were re-queued.
	Resumed, Cached, Ran, Retries int
	// Steals counts duplicate attempts started by work stealing;
	// Duplicates counts completions discarded because another copy won.
	Steals, Duplicates int
	// Attempts is the full attempt log of this invocation, in completion
	// order.
	Attempts []Attempt
}

// batchInfo describes one unit of the dispatch plan. In round-robin mode
// a unit is a classic shard (kind "shard", cells nil); in cost mode it is
// a cell batch (kind "cost", or "split" for a retry's re-split child).
type batchInfo struct {
	id     int
	kind   string
	parent int
	// cells[ri] holds run ri's assigned global cell indices, ascending;
	// nil means the classic round-robin share of shard id.
	cells [][]int
	// spec is shard.FormatCellSpec over cells; "" for classic shards.
	spec string
	// ncells counts the batch's cells across all runs (its output file's
	// CellCount); 0 when unknown (round-robin without a plan).
	ncells int
	// weight is the predicted cost, steering steal-target choice.
	weight float64
	// path is the canonical output file (shard<i>.json / batch<i>.json).
	// Steal attempts write path.s<attempt> so copies never collide.
	path string
}

// noun names the unit in log lines: classic shards keep their historical
// spelling.
func (b *batchInfo) noun() string {
	if b.kind == "shard" {
		return "shard"
	}
	return "batch"
}

// batchState is the coordinator's mutable view of one batch.
type batchState struct {
	*batchInfo
	done  bool
	split bool
	// file and filePath are the winning validated output.
	file     *shard.File
	filePath string
	// running counts in-flight attempts (can be 2 under stealing).
	running  int
	attempts int
	// failedOn records the pool indices of workers whose attempt at this
	// batch failed, so retries prefer a different worker — a single dead
	// host must not burn a batch's whole attempt budget while healthy
	// workers idle.
	failedOn map[int]bool
	started  time.Time
}

func newBatchState(b *batchInfo) *batchState {
	return &batchState{batchInfo: b, failedOn: make(map[int]bool)}
}

// task and outcome flow between the coordinator and the worker loops.
type task struct {
	b       *batchInfo
	attempt int
	steal   bool
	out     string
}

type outcome struct {
	task
	workerIdx int
	worker    string
	// file is the decoded, validated shard file of a successful attempt;
	// the driver merges these directly rather than re-reading the paths.
	file *shard.File
	err  error
}

// Run dispatches the spec's work across the worker pool and returns the
// merged result. Each unit is attempted up to Options.MaxAttempts times —
// an attempt fails if the worker errors, exceeds Options.AttemptTimeout,
// or leaves a file that fails validation — and any worker may pick up the
// retry. The merged output is byte-identical to the unsharded run for
// every decomposition: cells derive their randomness from their grid
// position, so a retried, stolen or re-split unit reproduces exactly the
// cells the lost one would have held.
//
// With Options.Dir set, progress survives interruption: completed shards
// are recorded in a journal, and a later Run over the same directory
// re-validates and skips them, executing only the missing cells.
//
// Run fails if any shard exhausts its attempts, if the context is
// cancelled, or if the directory's journal belongs to a different run.
func Run(ctx context.Context, spec Spec, workers []Worker, opts Options) (*Result, error) {
	spec, params, runNames, err := spec.normalised()
	if err != nil {
		return nil, err
	}
	balance, err := normalisedBalance(opts.Balance)
	if err != nil {
		return nil, err
	}
	codec, err := shard.ParseEncoding(opts.Codec)
	if err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	opts.Codec = codec
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: no workers")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	emit := func(e ProgressEvent) {
		if opts.Progress != nil {
			e.Version = ProgressVersion
			e.Time = time.Now()
			opts.Progress(e)
		}
	}
	if opts.PartialEvery > 0 && opts.Dir == "" {
		return nil, fmt.Errorf("dispatch: PartialEvery needs a persistent Dir to write partial merges into")
	}
	if opts.PartialEvery > 0 && balance != BalanceRoundRobin {
		return nil, fmt.Errorf("dispatch: PartialEvery requires round-robin balance (partial merges read classic shard files)")
	}

	dir, tempDir := opts.Dir, false
	if dir == "" {
		if dir, err = os.MkdirTemp("", "ioschedbench-dispatch-"); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		tempDir = true
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}

	jr, done, prior, err := OpenJournal(filepath.Join(dir, JournalFileName), spec, params, balance)
	if err != nil {
		return nil, err
	}
	// Close is idempotent; this covers the error-return paths, while the
	// success path below closes explicitly so journal write errors are
	// never swallowed (losing resume state silently would betray the
	// journal's contract).
	defer jr.Close()

	res := &Result{Dir: dir}
	// deposit feeds a validated shard file into the cell cache; failures
	// are logged, never fatal — the cache accelerates runs, it does not
	// gate them.
	deposit := func(f *shard.File) {
		if opts.Cache == nil {
			return
		}
		if err := experiment.DepositFile(opts.Cache, f, spec.Params); err != nil {
			logf("dispatch: cache deposit for shard %d: %v", f.Index, err)
		}
	}

	// states holds every live batch of the realised plan; files mirrors
	// them by shard index in round-robin mode only (the partial merge and
	// shard.Merge need the dense slice).
	var states []*batchState
	var files []*shard.File
	nextID := 0

	if balance == BalanceRoundRobin {
		files = make([]*shard.File, spec.Shards)
		paths := make([]string, spec.Shards)
		for i := range paths {
			paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		}
		res.ShardPaths = paths
		// Predicted per-shard cell counts feed the batch progress events
		// (and the Tracker's cell-weighted ETA); classic mode works
		// without them, so a plan failure here is not fatal.
		var ncells []int
		if plan, perr := experiment.PlanSelection(spec.Selection, spec.Params); perr == nil {
			if assign, aerr := (shard.RoundRobin{}).Split(plan.Grids, spec.Shards); aerr == nil {
				ncells = make([]int, spec.Shards)
				for ri := range assign {
					for _, part := range assign[ri] {
						ncells[part]++
					}
				}
			}
		}
		emit(ProgressEvent{Kind: ProgressPlan, Shards: spec.Shards, Shard: -1})
		for i := 0; i < spec.Shards; i++ {
			b := &batchInfo{id: i, kind: "shard", parent: -1, path: paths[i]}
			if ncells != nil {
				b.ncells = ncells[i]
				b.weight = float64(ncells[i])
			}
			emit(ProgressEvent{Kind: ProgressBatch, Shard: i, Cells: b.ncells})
			if p, ok := done[i]; ok {
				vp := p
				if vp == "" {
					vp = paths[i]
				}
				if f, verr := ValidateShardFile(vp, spec, i, params, runNames); verr == nil {
					files[i] = f
					res.ShardPaths[i] = vp
					res.Resumed++
					deposit(f)
					logf("dispatch: shard %d/%d already complete (journal), skipping", i, spec.Shards)
					emit(ProgressEvent{Kind: ProgressResumed, Shard: i, File: vp})
					continue
				} else {
					logf("dispatch: journal marks shard %d done but its file is invalid (%v); re-running", i, verr)
				}
			}
			if f := cachedShardFile(opts.Cache, spec, i, paths[i], params, runNames, opts.Codec, logf); f != nil {
				files[i] = f
				res.Cached++
				jr.Cached(i, paths[i])
				logf("dispatch: shard %d/%d satisfied from the cell cache, not queued", i, spec.Shards)
				emit(ProgressEvent{Kind: ProgressCached, Shard: i, File: paths[i]})
				continue
			}
			states = append(states, newBatchState(b))
		}
		nextID = spec.Shards
	} else {
		plan, err := experiment.PlanSelection(spec.Selection, spec.Params)
		if err != nil {
			return nil, err
		}
		costs := refineCosts(prior, plan)
		covered := make([]map[int]bool, len(plan.Names))
		for ri := range covered {
			covered[ri] = make(map[int]bool)
		}
		type resumedBatch struct {
			id   int
			path string
			file *shard.File
		}
		var resumed []resumedBatch
		if prior != nil {
			nextID = len(prior.ShardStates)
			for _, sh := range prior.ShardStates {
				if sh.Superseded {
					continue
				}
				if sh.State == ShardDone {
					if f, verr := ValidateBatchFile(sh.File, spec, nil, params, runNames); verr == nil {
						resumed = append(resumed, resumedBatch{sh.Index, sh.File, f})
						for ri, set := range f.Batch.Cells {
							for _, g := range set {
								covered[ri][g] = true
							}
						}
						continue
					} else {
						logf("dispatch: journal marks batch %d done but its file is invalid (%v); re-planning its cells", sh.Index, verr)
					}
				}
				// The batch is owed no longer: a fresh cost-packing over
				// the still-uncovered cells replaces it.
				jr.Batch(sh.Index, "dropped", -1, sh.Spec, sh.Cells, sh.Weight)
			}
		}
		batches, err := planBatches(plan, costs, covered, spec.Shards, dir, &nextID)
		if err != nil {
			return nil, err
		}
		emit(ProgressEvent{Kind: ProgressPlan, Shards: nextID, Shard: -1})
		for _, rb := range resumed {
			st := newBatchState(&batchInfo{id: rb.id, kind: "cost", parent: -1, path: rb.path, ncells: rb.file.CellCount()})
			st.done, st.file, st.filePath = true, rb.file, rb.path
			states = append(states, st)
			res.Resumed++
			deposit(rb.file)
			logf("dispatch: batch %d already complete (journal), skipping", rb.id)
			emit(ProgressEvent{Kind: ProgressResumed, Shard: rb.id, File: rb.path})
		}
		for _, b := range batches {
			jr.Batch(b.id, b.kind, -1, b.spec, b.ncells, b.weight)
			emit(ProgressEvent{Kind: ProgressBatch, Shard: b.id, Cells: b.ncells})
			st := newBatchState(b)
			if f := cachedBatchFile(opts.Cache, spec, b, params, runNames, opts.Codec, logf); f != nil {
				st.done, st.file, st.filePath = true, f, b.path
				res.Cached++
				jr.Cached(b.id, b.path)
				logf("dispatch: batch %d satisfied from the cell cache, not queued", b.id)
				emit(ProgressEvent{Kind: ProgressCached, Shard: b.id, File: b.path})
			}
			states = append(states, st)
		}
	}

	var queue []*batchState
	for _, st := range states {
		if !st.done {
			queue = append(queue, st)
		}
	}
	res.Ran = len(queue)

	if len(queue) > 0 {
		if err := run(ctx, spec, workers, opts, maxAttempts, logf, emit, deposit,
			params, runNames, jr, dir, &states, queue, &nextID, files, res); err != nil {
			return nil, err
		}
	}

	var merged *shard.File
	if balance == BalanceRoundRobin {
		for _, st := range states {
			if st.done {
				res.ShardPaths[st.id] = st.filePath
			}
		}
		merged, err = shard.Merge(files)
		if err != nil {
			return nil, err
		}
		res.Shards = spec.Shards
		jr.Merged(spec.Shards, merged.CellCount())
		logf("dispatch: merged %d shards (%d cells) for %q", spec.Shards, merged.CellCount(), spec.Selection)
		emit(ProgressEvent{Kind: ProgressMerged, Shards: spec.Shards, Shard: -1, Cells: merged.CellCount()})
	} else {
		sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
		var bfiles []*shard.File
		res.ShardPaths = nil
		for _, st := range states {
			if st.split {
				continue // its children carry the cells
			}
			if !st.done || st.file == nil {
				return nil, fmt.Errorf("dispatch: internal: batch %d never completed", st.id)
			}
			bfiles = append(bfiles, st.file)
			res.ShardPaths = append(res.ShardPaths, st.filePath)
		}
		var dups int
		merged, dups, err = shard.MergeBatches(bfiles)
		if err != nil {
			return nil, err
		}
		res.Duplicates += dups
		res.Shards = len(bfiles)
		jr.Merged(len(bfiles), merged.CellCount())
		logf("dispatch: merged %d batches (%d cells) for %q", len(bfiles), merged.CellCount(), spec.Selection)
		emit(ProgressEvent{Kind: ProgressMerged, Shards: len(bfiles), Shard: -1, Cells: merged.CellCount()})
	}
	// The cover is complete: a stale auto-partial file would only invite
	// re-rendering a subset of a finished sweep. Unconditional — a resume
	// without PartialEvery must still clean up what an earlier, observed
	// invocation left behind.
	if err := os.Remove(filepath.Join(dir, partialFileName)); err != nil && !os.IsNotExist(err) {
		logf("dispatch: removing %s: %v", partialFileName, err)
	}
	if err := jr.Close(); err != nil {
		return nil, fmt.Errorf("dispatch: journal: %w", err)
	}
	res.Merged = merged
	if tempDir {
		res.Dir, res.ShardPaths = "", nil
	}
	return res, nil
}

// PlannedBatch is one unit of a cost-balanced decomposition as produced
// by PlanCostBatches: a set of grid cells per canonical run, its formatted
// cell spec, cell count and predicted weight. Exported so other drivers of
// the dispatch journal schema (the coordinator service in internal/coord)
// plan batches exactly the way the in-process dispatcher does.
type PlannedBatch struct {
	ID     int
	Cells  [][]int
	Spec   string
	NCells int
	Weight float64
}

// PlanCostBatches cost-packs the selection's not-yet-covered cells into up
// to parts batches of near-equal predicted cost, numbering them from
// startID, and returns the batches plus the next free id. Shared-key
// groups are packed once through their representative (its members copy
// the assignment), so fig6/fig7's single computation is never priced
// twice; parts that end up empty are dropped rather than dispatched.
func PlanCostBatches(plan *experiment.RunPlan, costs [][]float64, covered []map[int]bool,
	parts, startID int) ([]PlannedBatch, int, error) {
	masked := make([][]float64, len(costs))
	for ri := range costs {
		masked[ri] = make([]float64, len(costs[ri]))
		if plan.Groups[ri] != ri {
			continue // shared-key member: its representative carries the cost
		}
		for g, c := range costs[ri] {
			if !covered[ri][g] {
				masked[ri][g] = c
			}
		}
	}
	assign, err := shard.CostPacked{Costs: masked}.Split(plan.Grids, parts)
	if err != nil {
		return nil, startID, err
	}
	for ri := range assign {
		if plan.Groups[ri] != ri {
			assign[ri] = assign[plan.Groups[ri]]
		}
	}
	var out []PlannedBatch
	for p := 0; p < parts; p++ {
		cells := make([][]int, len(plan.Names))
		ncells := 0
		weight := 0.0
		for ri := range plan.Names {
			for g, part := range assign[ri] {
				if part != p || covered[ri][g] {
					continue
				}
				cells[ri] = append(cells[ri], g)
				ncells++
				if plan.Groups[ri] == ri {
					weight += costs[ri][g]
				}
			}
		}
		if ncells == 0 {
			continue
		}
		spec, err := shard.FormatCellSpec(plan.Names, cells)
		if err != nil {
			return nil, startID, err
		}
		out = append(out, PlannedBatch{
			ID: startID, Cells: cells, Spec: spec, NCells: ncells, Weight: weight,
		})
		startID++
	}
	return out, startID, nil
}

// planBatches adapts PlanCostBatches to the dispatcher's batchInfo,
// assigning each batch its output path inside dir.
func planBatches(plan *experiment.RunPlan, costs [][]float64, covered []map[int]bool,
	parts int, dir string, nextID *int) ([]*batchInfo, error) {
	planned, next, err := PlanCostBatches(plan, costs, covered, parts, *nextID)
	if err != nil {
		return nil, err
	}
	*nextID = next
	var out []*batchInfo
	for _, b := range planned {
		out = append(out, &batchInfo{
			id: b.ID, kind: "cost", parent: -1,
			cells: b.Cells, spec: b.Spec, ncells: b.NCells, weight: b.Weight,
			path: filepath.Join(dir, fmt.Sprintf("batch%d.json", b.ID)),
		})
	}
	return out, nil
}

// splitBatch halves a failed batch's cells into two child batches (walked
// in run/cell order), inheriting the parent's attempt count and failure
// history so the attempt budget still bounds the lineage. Returns nil if
// the batch cannot be split.
func splitBatch(st *batchState, attempt int, runNames []string, dir string, nextID *int) []*batchState {
	if st.cells == nil || st.ncells < 2 {
		return nil
	}
	half := st.ncells / 2
	a := make([][]int, len(st.cells))
	b := make([][]int, len(st.cells))
	n := 0
	for ri, set := range st.cells {
		for _, g := range set {
			if n < half {
				a[ri] = append(a[ri], g)
			} else {
				b[ri] = append(b[ri], g)
			}
			n++
		}
	}
	var out []*batchState
	for _, cells := range [][][]int{a, b} {
		spec, err := shard.FormatCellSpec(runNames, cells)
		if err != nil {
			return nil
		}
		id := *nextID
		*nextID++
		nc := 0
		for _, set := range cells {
			nc += len(set)
		}
		c := &batchInfo{
			id: id, kind: "split", parent: st.id,
			cells: cells, spec: spec, ncells: nc, weight: st.weight / 2,
			path: filepath.Join(dir, fmt.Sprintf("batch%d.json", id)),
		}
		cst := newBatchState(c)
		cst.attempts = attempt
		for wi := range st.failedOn {
			cst.failedOn[wi] = true
		}
		out = append(out, cst)
	}
	return out
}

// run drains the queue through the worker pool: a pull-based work queue
// where the coordinator hands tasks to idle workers explicitly (one
// channel per worker) rather than letting workers race on a shared
// queue. That is what lets a retry prefer a worker that has not already
// failed the batch — a single dead worker cannot consume a batch's whole
// attempt budget while healthy workers sit idle — and what lets idle
// workers steal a second copy of a straggling batch once the queue
// drains (Options.Steal). First completion wins; late duplicates are
// discarded without journaling. A failed cost batch with no copy still
// running is re-split into two child batches, so a retry re-runs half
// the work per worker instead of all of it.
func run(ctx context.Context, spec Spec, workers []Worker, opts Options, maxAttempts int,
	logf func(string, ...any), emit func(ProgressEvent), deposit func(*shard.File),
	params []byte, runNames []string,
	jr *Journal, dir string, statesAll *[]*batchState, queue []*batchState,
	nextID *int, files []*shard.File, res *Result) error {

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	feeds := make([]chan task, len(workers))
	results := make(chan outcome)
	requeue := make(chan *batchState, len(queue)*maxAttempts*2+len(workers)+1)
	var wg sync.WaitGroup
	for i, w := range workers {
		feeds[i] = make(chan task, 1)
		wg.Add(1)
		go func(wi int, w Worker) {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case t := <-feeds[wi]:
					o := outcome{task: t, workerIdx: wi, worker: w.Name()}
					o.file, o.err = runAttempt(runCtx, w, spec, t, params, runNames, opts.AttemptTimeout)
					select {
					case results <- o:
					case <-runCtx.Done():
						return
					}
				}
			}
		}(i, w)
	}

	byID := make(map[int]*batchState, len(*statesAll))
	for _, st := range *statesAll {
		byID[st.id] = st
	}
	idle := make([]int, len(workers))
	for i := range idle {
		idle[i] = i
	}
	pending := append([]*batchState(nil), queue...)
	remaining := len(queue)

	// assign hands one attempt (or steal) to worker wi; the coordinator
	// journals and emits at assignment time, so the journal's attempt
	// order is the assignment order.
	assign := func(st *batchState, wi int, steal bool) {
		st.attempts++
		st.running++
		if st.started.IsZero() {
			st.started = time.Now()
		}
		att := st.attempts
		out := st.path
		name := workers[wi].Name()
		if steal {
			// Steal copies write a suffixed path: the canonical path stays
			// owned by regular attempts, so by-hand merges over canonical
			// names keep working whatever the race outcome.
			out = fmt.Sprintf("%s.s%d", st.path, att)
			res.Steals++
			jr.Steal(st.id, att, name)
			logf("dispatch: %s %d stolen by idle %s (attempt %d/%d)", st.noun(), st.id, name, att, maxAttempts)
			emit(ProgressEvent{Kind: ProgressSteal, Shard: st.id, Attempt: att, Worker: name})
		} else {
			jr.Attempt(st.id, att, name)
			logf("dispatch: %s %d attempt %d/%d on %s", st.noun(), st.id, att, maxAttempts, name)
			emit(ProgressEvent{Kind: ProgressAttempt, Shard: st.id, Attempt: att, Worker: name})
		}
		feeds[wi] <- task{b: st.batchInfo, attempt: att, steal: steal, out: out}
	}

	// tryAssign hands queued batches to idle workers, preferring for each
	// a worker that has not failed it yet; batches whose only fresh
	// workers are busy stay queued until one frees up. With the queue
	// drained and Steal on, leftover idle workers take a second copy of
	// the heaviest single-copy straggler.
	tryAssign := func() {
		for len(idle) > 0 {
			assigned := false
			for pi := 0; pi < len(pending) && !assigned; pi++ {
				st := pending[pi]
				pick := -1
				for ii, wi := range idle {
					if !st.failedOn[wi] {
						pick = ii
						break
					}
				}
				if pick == -1 && len(st.failedOn) >= len(workers) {
					pick = 0 // every worker failed it once; anyone may retry
				}
				if pick == -1 {
					continue
				}
				wi := idle[pick]
				idle = append(idle[:pick], idle[pick+1:]...)
				pending = append(pending[:pi], pending[pi+1:]...)
				assign(st, wi, false)
				assigned = true
			}
			if !assigned {
				break
			}
		}
		if !opts.Steal || len(pending) > 0 {
			return
		}
		for len(idle) > 0 {
			var target *batchState
			pick := -1
			for _, st := range byID {
				if st.done || st.split || st.running != 1 || st.attempts >= maxAttempts {
					continue
				}
				wpick := -1
				for ii, wi := range idle {
					if !st.failedOn[wi] {
						wpick = ii
						break
					}
				}
				if wpick == -1 {
					continue
				}
				if target == nil || st.weight > target.weight ||
					(st.weight == target.weight && (st.started.Before(target.started) ||
						(st.started.Equal(target.started) && st.id < target.id))) {
					target, pick = st, wpick
				}
			}
			if target == nil {
				return
			}
			wi := idle[pick]
			idle = append(idle[:pick], idle[pick+1:]...)
			assign(target, wi, true)
		}
	}

	// The auto-partial ticker shares the coordinator loop, so it reads the
	// files slice race-free between completions.
	var partialTick <-chan time.Time
	if opts.PartialEvery > 0 {
		ticker := time.NewTicker(opts.PartialEvery)
		defer ticker.Stop()
		partialTick = ticker.C
	}
	partialSaved := -1 // done-count at the last successful write
	savePartial := func() {
		done := 0
		for _, f := range files {
			if f != nil {
				done++
			}
		}
		if done == partialSaved {
			// Nothing completed since the last write: re-merging would
			// only rewrite identical bytes from the coordinator loop.
			return
		}
		path, present, cells, err := writePartial(opts.Dir, files, opts.Codec)
		if err != nil {
			// A failed provisional write must not kill the sweep it
			// observes; the next tick retries. It must stay visible even
			// when only the progress stream is watched (the CLI's
			// -progress mode discards Logf), so it is also emitted as a
			// partial event carrying the error.
			logf("dispatch: partial merge: %v", err)
			emit(ProgressEvent{Kind: ProgressPartial, Shard: -1, Err: err.Error()})
			return
		}
		partialSaved = done
		if path == "" {
			return
		}
		jr.Partial(path, present, cells)
		logf("dispatch: partial merge: %d/%d shards (%d cells) written to %s", present, spec.Shards, cells, path)
		emit(ProgressEvent{Kind: ProgressPartial, Shards: present, Shard: -1, File: path, Cells: cells})
	}

	tryAssign()
	var fatal error
	for remaining > 0 && fatal == nil {
		select {
		case <-ctx.Done():
			fatal = ctx.Err()
		case <-partialTick:
			savePartial()
		case st := <-requeue:
			pending = append(pending, st)
			tryAssign()
		case o := <-results:
			idle = append(idle, o.workerIdx)
			st := byID[o.b.id]
			st.running--
			a := Attempt{Shard: o.b.id, Attempt: o.attempt, Steal: o.steal, Worker: o.worker}
			if o.err != nil {
				a.Err = o.err.Error()
			}
			res.Attempts = append(res.Attempts, a)
			if st.done {
				// A concurrent copy already won. The outcome — success or
				// failure — concerns a duplicate and is discarded without
				// journaling: the batch's record ends at its done event.
				if o.err == nil {
					res.Duplicates++
					logf("dispatch: %s %d duplicate completion (attempt %d on %s) discarded", o.b.noun(), o.b.id, o.attempt, o.worker)
					if o.out != st.filePath {
						os.Remove(o.out)
					}
				}
				tryAssign()
				continue
			}
			if o.err == nil {
				st.done, st.file, st.filePath = true, o.file, o.out
				if files != nil {
					files[o.b.id] = o.file
				}
				deposit(o.file)
				jr.Done(o.b.id, o.attempt, o.worker, o.out, o.file.CellCount())
				logf("dispatch: %s %d complete (attempt %d on %s)", o.b.noun(), o.b.id, o.attempt, o.worker)
				emit(ProgressEvent{Kind: ProgressDone, Shard: o.b.id, Attempt: o.attempt, Worker: o.worker, File: o.out, Cells: o.file.CellCount()})
				remaining--
				tryAssign()
				continue
			}
			jr.Fail(o.b.id, o.attempt, o.worker, o.err)
			emit(ProgressEvent{Kind: ProgressFailed, Shard: o.b.id, Attempt: o.attempt, Worker: o.worker, Err: o.err.Error()})
			st.failedOn[o.workerIdx] = true
			if st.running > 0 {
				// A concurrent copy is still in flight; it may yet win, so
				// nothing is re-queued.
				logf("dispatch: %s %d attempt %d on %s failed; a concurrent copy is still running: %v",
					o.b.noun(), o.b.id, o.attempt, o.worker, o.err)
				tryAssign()
				continue
			}
			if o.attempt >= maxAttempts {
				fatal = fmt.Errorf("dispatch: shard %d failed all %d attempts, last on %s: %w",
					o.b.id, o.attempt, o.worker, o.err)
				continue
			}
			res.Retries++
			if children := splitBatch(st, o.attempt, runNames, dir, nextID); children != nil {
				st.split = true
				remaining++
				logf("dispatch: batch %d attempt %d on %s failed; re-splitting %d cells into batches %d+%d: %v",
					st.id, o.attempt, o.worker, st.ncells, children[0].id, children[1].id, o.err)
				for _, c := range children {
					jr.Batch(c.id, c.kind, c.parent, c.spec, c.ncells, c.weight)
					emit(ProgressEvent{Kind: ProgressBatch, Shard: c.id, Cells: c.ncells})
					byID[c.id] = c
					*statesAll = append(*statesAll, c)
					pending = append(pending, c)
				}
				tryAssign()
				continue
			}
			logf("dispatch: %s %d attempt %d on %s failed, retrying: %v", o.b.noun(), o.b.id, o.attempt, o.worker, o.err)
			if opts.RetryDelay > 0 {
				go func(st *batchState) {
					select {
					case <-time.After(opts.RetryDelay):
						requeue <- st
					case <-runCtx.Done():
					}
				}(st)
			} else {
				pending = append(pending, st)
				tryAssign()
			}
		}
	}
	cancel()
	wg.Wait()
	return fatal
}

// writePartial merges the validated shard files completed so far into the
// dispatch directory's partial.json and returns its path, present-shard
// count and covered cells. It writes nothing — returning "" — when no
// shard has completed yet or the cover is already complete (the final
// merge is about to supersede it).
func writePartial(dir string, files []*shard.File, codec string) (string, int, int, error) {
	var have []*shard.File
	for _, f := range files {
		if f != nil {
			have = append(have, f)
		}
	}
	if len(have) == 0 || len(have) == len(files) {
		return "", 0, 0, nil
	}
	cover, err := shard.MergePartial(have)
	if err != nil {
		return "", 0, 0, err
	}
	// Write-then-rename: the file is documented as renderable at any
	// moment, so a concurrent "merge -partial" must never observe a
	// truncated in-place rewrite.
	path := filepath.Join(dir, partialFileName)
	tmp := path + ".tmp"
	if err := cover.File.WriteFileAs(tmp, codec); err != nil {
		return "", 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, 0, err
	}
	return path, len(cover.Present), cover.CellsHave(), nil
}

// cachedShardFile tries to satisfy shard index from the cell cache: it
// builds the file purely from cached cells (experiment.CachedShard),
// writes it to the shard path, and re-validates it from disk exactly
// like a worker's output. Any gap or failure returns nil — the shard is
// queued normally. A nil cache returns nil immediately.
func cachedShardFile(cache *cellcache.Store, spec Spec, index int, path string,
	params []byte, runNames []string, codec string, logf func(string, ...any)) *shard.File {
	if cache == nil {
		return nil
	}
	f, ok, err := experiment.CachedShard(cache, spec.Selection, spec.Params, spec.Shards, index)
	if err != nil {
		logf("dispatch: cache probe for shard %d: %v", index, err)
		return nil
	}
	if !ok {
		return nil
	}
	if err := f.WriteFileAs(path, codec); err != nil {
		logf("dispatch: writing cached shard %d: %v", index, err)
		return nil
	}
	// The cached file passes the exact gate a worker's file must pass, so
	// a cache bug is a re-queued shard, never a silently merged one.
	vf, err := ValidateShardFile(path, spec, index, params, runNames)
	if err != nil {
		logf("dispatch: cached shard %d failed validation (%v); re-running", index, err)
		return nil
	}
	return vf
}

// cachedBatchFile is cachedShardFile's cost-mode counterpart: it tries to
// satisfy one planned batch purely from the cell cache and re-validates
// the written file like any worker output.
func cachedBatchFile(cache *cellcache.Store, spec Spec, b *batchInfo,
	params []byte, runNames []string, codec string, logf func(string, ...any)) *shard.File {
	if cache == nil {
		return nil
	}
	f, ok, err := experiment.CachedBatch(cache, spec.Selection, spec.Params, b.cells)
	if err != nil {
		logf("dispatch: cache probe for batch %d: %v", b.id, err)
		return nil
	}
	if !ok {
		return nil
	}
	if err := f.WriteFileAs(b.path, codec); err != nil {
		logf("dispatch: writing cached batch %d: %v", b.id, err)
		return nil
	}
	vf, err := ValidateBatchFile(b.path, spec, b.cells, params, runNames)
	if err != nil {
		logf("dispatch: cached batch %d failed validation (%v); re-running", b.id, err)
		return nil
	}
	return vf
}

// runAttempt runs one attempt under the per-attempt timeout and validates
// the produced file, returning its decoded form on success.
func runAttempt(ctx context.Context, w Worker, spec Spec, t task,
	params []byte, runNames []string, timeout time.Duration) (*shard.File, error) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// Drop any partial file a previous attempt left, so validation can
	// never accept stale output.
	if err := os.Remove(t.out); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	var f *shard.File
	err := w.Run(actx, Task{Spec: spec, Index: t.b.id, Cells: t.b.spec, Out: t.out})
	if err == nil {
		if t.b.cells != nil {
			f, err = ValidateBatchFile(t.out, spec, t.b.cells, params, runNames)
		} else {
			f, err = ValidateShardFile(t.out, spec, t.b.id, params, runNames)
		}
	}
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("dispatch: attempt exceeded the %v timeout: %w", timeout, err)
	}
	return f, err
}

// validateRunFile holds the validation gates shared by shard and batch
// files: a decodable file of exactly this run — right selection and
// params, the selection's canonical runs, and the grid and payload layout
// the registry derives from the params (experiment.ValidateRuns).
func validateRunFile(path string, spec Spec, params []byte, runNames []string) (*shard.File, error) {
	f, err := shard.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f.Selection != spec.Selection {
		return nil, fmt.Errorf("dispatch: %s records selection %q, want %q", path, f.Selection, spec.Selection)
	}
	var got bytes.Buffer
	if err := json.Compact(&got, f.Params); err != nil {
		return nil, fmt.Errorf("dispatch: %s params: %w", path, err)
	}
	if !bytes.Equal(got.Bytes(), params) {
		return nil, fmt.Errorf("dispatch: %s was produced by a different run (params mismatch: %s)",
			path, shard.DiffParams(params, got.Bytes()))
	}
	if len(f.Runs) != len(runNames) {
		return nil, fmt.Errorf("dispatch: %s holds %d runs, want %d", path, len(f.Runs), len(runNames))
	}
	for i, r := range f.Runs {
		if r.Experiment != runNames[i] {
			return nil, fmt.Errorf("dispatch: %s run %d is %q, want %q", path, i, r.Experiment, runNames[i])
		}
	}
	if err := experiment.ValidateRuns(f, spec.Params); err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", path, err)
	}
	return f, nil
}

// ValidateShardFile accepts a worker's output only if it is a valid
// classic shard file of exactly this run and index with every owned cell
// present exactly once (File.ValidateCells), and returns the decoded file
// so the driver never parses a shard twice. Anything else counts as a
// failed attempt and is retried.
func ValidateShardFile(path string, spec Spec, index int, params []byte, runNames []string) (*shard.File, error) {
	f, err := validateRunFile(path, spec, params, runNames)
	if err != nil {
		return nil, err
	}
	if f.Batch != nil {
		return nil, fmt.Errorf("dispatch: %s is a cell-batch file, want shard %d/%d", path, index, spec.Shards)
	}
	if f.Shards != spec.Shards || f.Index != index {
		return nil, fmt.Errorf("dispatch: %s records shard %d/%d, want %d/%d",
			path, f.Index, f.Shards, index, spec.Shards)
	}
	if err := f.ValidateCells(); err != nil {
		return nil, err
	}
	return f, nil
}

// ValidateBatchFile is ValidateShardFile's counterpart for cell-batch
// files. With cells non-nil the file's batch header must record exactly
// those per-run sets — a worker that computed the wrong cells is a failed
// attempt, not a mergeable file; with cells nil the header is accepted as
// recorded (resume trusts the journaled plan it re-validates against).
func ValidateBatchFile(path string, spec Spec, cells [][]int, params []byte, runNames []string) (*shard.File, error) {
	f, err := validateRunFile(path, spec, params, runNames)
	if err != nil {
		return nil, err
	}
	if f.Batch == nil {
		return nil, fmt.Errorf("dispatch: %s is not a cell-batch file", path)
	}
	if f.Shards != 1 || f.Index != 0 {
		return nil, fmt.Errorf("dispatch: %s records shard %d/%d, want a 1/0 batch", path, f.Index, f.Shards)
	}
	if cells != nil {
		if len(f.Batch.Cells) != len(cells) {
			return nil, fmt.Errorf("dispatch: %s records %d cell sets, want %d", path, len(f.Batch.Cells), len(cells))
		}
		for ri := range cells {
			if !equalInts(f.Batch.Cells[ri], cells[ri]) {
				return nil, fmt.Errorf("dispatch: %s run %d records cells %q, want %q",
					path, ri, shard.FormatRanges(f.Batch.Cells[ri]), shard.FormatRanges(cells[ri]))
			}
		}
	}
	if err := f.ValidateCells(); err != nil {
		return nil, err
	}
	return f, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
