package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/shard"
)

// Spec describes one dispatched run: which experiment selection, with
// which parameters, split into how many shards.
type Spec struct {
	// Selection is the experiment selection ("all" or one grid
	// experiment's name); "" means "all".
	Selection string
	// Params is the run parameterisation recorded in every shard file.
	// The driver normalises it (experiment.ShardParams.Normalised), so
	// zero values select the same defaults the CLI's flags do.
	Params experiment.ShardParams
	// Shards is the number of shards the run is split into.
	Shards int
}

// normalised validates the spec and returns it with the selection and
// params resolved, alongside the compact params JSON every shard file of
// the run must record and the canonical run names of the selection.
func (s Spec) normalised() (Spec, []byte, []string, error) {
	if s.Selection == "" {
		s.Selection = experiment.ExpAll
	}
	runNames, err := experiment.SelectionRuns(s.Selection)
	if err != nil {
		return Spec{}, nil, nil, err
	}
	if _, err := shard.NewPlan(s.Shards, 0); err != nil {
		return Spec{}, nil, nil, err
	}
	s.Params = s.Params.Normalised()
	params, err := json.Marshal(s.Params)
	if err != nil {
		return Spec{}, nil, nil, fmt.Errorf("dispatch: encode params: %w", err)
	}
	return s, params, runNames, nil
}

// WorkerArgs returns the ioschedbench command-line arguments that make a
// worker process evaluate shard index of the spec: the run flags with
// every default resolved, plus -shards/-shard-index. The output flag is
// deliberately absent — LocalProcWorker appends "-out <path>" and
// CmdWorker templates choose their own file contract — as is -parallel,
// which is host-local and never changes results.
//
// It returns an error for params no ioschedbench flag can express
// (multi-device or motivation overrides), so a library-configured spec
// that a CLI worker could not reproduce fails before any work is
// dispatched rather than at params validation after it.
func (s Spec) WorkerArgs(index int) ([]string, error) {
	p := s.Params.Normalised()
	base := experiment.ShardParams{Seed: p.Seed, PaperScale: p.PaperScale}.Normalised()
	if p.MultiDeviceU != base.MultiDeviceU || p.MotivationWrites != base.MotivationWrites ||
		fmt.Sprint(p.MultiDeviceCounts) != fmt.Sprint(base.MultiDeviceCounts) {
		return nil, fmt.Errorf("dispatch: params override multi-device or motivation settings that have no ioschedbench flag")
	}
	args := []string{
		"-experiment", s.Selection,
		"-seed", strconv.FormatInt(p.Seed, 10),
		"-systems", strconv.Itoa(p.Systems),
		"-gapop", strconv.Itoa(p.GAPopulation),
		"-gagens", strconv.Itoa(p.GAGenerations),
		"-ablation-u", strconv.FormatFloat(p.AblationU, 'g', -1, 64),
	}
	if p.PaperScale {
		args = append(args, "-paperscale")
	}
	return append(args, "-shards", strconv.Itoa(s.Shards), "-shard-index", strconv.Itoa(index)), nil
}

// Options tunes the driver; the zero value is a sensible default.
type Options struct {
	// MaxAttempts bounds how often one shard is tried before the whole
	// dispatch fails; <= 0 selects 3 (one run plus two retries).
	MaxAttempts int
	// AttemptTimeout bounds one attempt's wall-clock time; an attempt
	// over budget is killed (via its context) and re-queued like any
	// other failure. 0 means no per-attempt bound.
	AttemptTimeout time.Duration
	// RetryDelay pauses a failed shard before it is re-queued, so a pool
	// whose failures are transient (a rebooting host) does not burn its
	// attempt budget in milliseconds. 0 re-queues immediately.
	RetryDelay time.Duration
	// Dir is the working directory for the shard files and the journal.
	// "" uses a fresh temporary directory that is removed after a
	// successful merge — set Dir to keep the files and to make an
	// interrupted dispatch resumable.
	Dir string
	// Logf receives structured progress and retry lines; nil discards
	// them. It is called from multiple goroutines and must be safe for
	// concurrent use (log.Printf and friends are).
	Logf func(format string, args ...any)
	// Progress receives the typed progress-event stream (schema version
	// ProgressVersion): plan, resumed, attempt, done, fail, partial and
	// merged events mirroring the journal, suitable for live status
	// displays (feed them to a Tracker) without parsing log lines.
	// Attempt events are delivered from the worker goroutines, so the
	// handler must be safe for concurrent use. nil disables the stream.
	Progress func(ProgressEvent)
	// PartialEvery, when > 0, periodically merges the shards completed so
	// far into <Dir>/partial.json — a provisional partial cover file that
	// "ioschedbench merge -partial" (or shard.MergePartial) renders while
	// the dispatch is still running, and that a MergePartial over the
	// remaining shards grows into the full, byte-identical result. The
	// file is refreshed in place and removed after the final merge.
	// Requires Dir: a temporary working directory would discard it.
	PartialEvery time.Duration
	// Cache, when non-nil, is the cell cache consulted before a shard is
	// queued: a shard whose cells the cache fully holds is written from
	// the cache (journaled as "cached") instead of dispatched to a
	// worker, and every validated worker output is deposited back, so
	// overlapping runs recompute only their frontier. The cached file is
	// re-validated exactly like a worker's before it is accepted.
	Cache *cellcache.Store
}

// Attempt records one worker attempt at one shard.
type Attempt struct {
	// Shard and Attempt identify the try: attempt n is the n-th time this
	// shard ran, starting at 1.
	Shard   int
	Attempt int
	// Worker is the name of the worker that ran it.
	Worker string
	// Err is the failure ("" for success): the worker's error, or the
	// validation error for a corrupt or partial file.
	Err string
}

// Result reports a completed dispatch.
type Result struct {
	// Merged is the complete single-shard equivalent file — byte-identical
	// (once encoded) to what the unsharded run would have produced.
	Merged *shard.File
	// Dir is the working directory holding the shard files and journal;
	// "" if the driver used (and removed) a temporary directory.
	Dir string
	// ShardPaths are the per-shard file paths, indexed by shard; nil if
	// the working directory was temporary.
	ShardPaths []string
	// Resumed counts shards satisfied from the journal without running;
	// Cached counts shards satisfied from the cell cache without running;
	// Ran counts shards executed by this invocation; Retries counts
	// failed attempts that were re-queued.
	Resumed, Cached, Ran, Retries int
	// Attempts is the full attempt log of this invocation, in completion
	// order.
	Attempts []Attempt
}

// task and outcome flow between the coordinator and the worker loops.
type task struct {
	index   int
	attempt int
	// failedOn records the pool indices of workers whose attempt at this
	// shard failed, so retries prefer a different worker — a single dead
	// host must not burn a shard's whole attempt budget while healthy
	// workers idle.
	failedOn map[int]bool
}

type outcome struct {
	task
	workerIdx int
	worker    string
	// file is the decoded, validated shard file of a successful attempt;
	// the driver merges these directly rather than re-reading the paths.
	file *shard.File
	err  error
}

// Run dispatches the spec's shards across the worker pool and returns the
// merged result. Each shard is attempted up to Options.MaxAttempts times —
// an attempt fails if the worker errors, exceeds Options.AttemptTimeout,
// or leaves a file that fails validation — and any worker may pick up the
// retry. The merged output is byte-identical to the unsharded run: cells
// derive their randomness from their grid position, so a retried shard
// reproduces exactly the cells the lost one would have held.
//
// With Options.Dir set, progress survives interruption: completed shards
// are recorded in a journal, and a later Run over the same directory
// re-validates and skips them, executing only the missing indices.
//
// Run fails if any shard exhausts its attempts, if the context is
// cancelled, or if the directory's journal belongs to a different run.
func Run(ctx context.Context, spec Spec, workers []Worker, opts Options) (*Result, error) {
	spec, params, runNames, err := spec.normalised()
	if err != nil {
		return nil, err
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("dispatch: no workers")
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	emit := func(e ProgressEvent) {
		if opts.Progress != nil {
			e.Version = ProgressVersion
			e.Time = time.Now()
			opts.Progress(e)
		}
	}
	if opts.PartialEvery > 0 && opts.Dir == "" {
		return nil, fmt.Errorf("dispatch: PartialEvery needs a persistent Dir to write partial merges into")
	}

	dir, tempDir := opts.Dir, false
	if dir == "" {
		if dir, err = os.MkdirTemp("", "ioschedbench-dispatch-"); err != nil {
			return nil, fmt.Errorf("dispatch: %w", err)
		}
		tempDir = true
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: %w", err)
	}

	paths := make([]string, spec.Shards)
	for i := range paths {
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
	}

	jr, done, err := openJournal(filepath.Join(dir, journalFileName), spec, params)
	if err != nil {
		return nil, err
	}
	// Close is idempotent; this covers the error-return paths, while the
	// success path below closes explicitly so journal write errors are
	// never swallowed (losing resume state silently would betray the
	// journal's contract).
	defer jr.Close()

	res := &Result{Dir: dir, ShardPaths: paths}
	files := make([]*shard.File, spec.Shards)
	// deposit feeds a validated shard file into the cell cache; failures
	// are logged, never fatal — the cache accelerates runs, it does not
	// gate them.
	deposit := func(f *shard.File) {
		if opts.Cache == nil {
			return
		}
		if err := experiment.DepositFile(opts.Cache, f, spec.Params); err != nil {
			logf("dispatch: cache deposit for shard %d: %v", f.Index, err)
		}
	}
	emit(ProgressEvent{Kind: ProgressPlan, Shards: spec.Shards, Shard: -1})
	var pending []task
	for i := 0; i < spec.Shards; i++ {
		if done[i] {
			if f, verr := validateShardFile(paths[i], spec, i, params, runNames); verr == nil {
				files[i] = f
				res.Resumed++
				deposit(f)
				logf("dispatch: shard %d/%d already complete (journal), skipping", i, spec.Shards)
				emit(ProgressEvent{Kind: ProgressResumed, Shard: i, File: paths[i]})
				continue
			} else {
				logf("dispatch: journal marks shard %d done but its file is invalid (%v); re-running", i, verr)
			}
		}
		if f := cachedShardFile(opts.Cache, spec, i, paths[i], params, runNames, logf); f != nil {
			files[i] = f
			res.Cached++
			jr.cached(i, paths[i])
			logf("dispatch: shard %d/%d satisfied from the cell cache, not queued", i, spec.Shards)
			emit(ProgressEvent{Kind: ProgressCached, Shard: i, File: paths[i]})
			continue
		}
		pending = append(pending, task{index: i, attempt: 1})
	}
	res.Ran = len(pending)

	if len(pending) > 0 {
		if err := run(ctx, spec, workers, opts, maxAttempts, logf, emit, deposit, paths, params, runNames, jr, pending, res, files); err != nil {
			return nil, err
		}
	}

	merged, err := shard.Merge(files)
	if err != nil {
		return nil, err
	}
	jr.merged(spec.Shards, merged.CellCount())
	logf("dispatch: merged %d shards (%d cells) for %q", spec.Shards, merged.CellCount(), spec.Selection)
	emit(ProgressEvent{Kind: ProgressMerged, Shards: spec.Shards, Shard: -1, Cells: merged.CellCount()})
	// The cover is complete: a stale auto-partial file would only invite
	// re-rendering a subset of a finished sweep. Unconditional — a resume
	// without PartialEvery must still clean up what an earlier, observed
	// invocation left behind.
	if err := os.Remove(filepath.Join(dir, partialFileName)); err != nil && !os.IsNotExist(err) {
		logf("dispatch: removing %s: %v", partialFileName, err)
	}
	if err := jr.Close(); err != nil {
		return nil, fmt.Errorf("dispatch: journal: %w", err)
	}
	res.Merged = merged
	if tempDir {
		res.Dir, res.ShardPaths = "", nil
	}
	return res, nil
}

// run drains the pending shards through the worker pool, re-queueing
// failures until every shard completes or one exhausts its attempts.
//
// The coordinator assigns tasks to idle workers explicitly (one channel
// per worker) rather than letting workers race on a shared queue: that is
// what lets a retry prefer a worker that has not already failed the
// shard, so a single dead worker cannot consume a shard's whole attempt
// budget while healthy workers sit idle. A shard that has failed on every
// worker may run anywhere.
func run(ctx context.Context, spec Spec, workers []Worker, opts Options, maxAttempts int,
	logf func(string, ...any), emit func(ProgressEvent), deposit func(*shard.File),
	paths []string, params []byte, runNames []string,
	jr *journal, pending []task, res *Result, files []*shard.File) error {

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	feeds := make([]chan task, len(workers))
	results := make(chan outcome)
	requeue := make(chan task, spec.Shards*maxAttempts)
	var wg sync.WaitGroup
	for i, w := range workers {
		feeds[i] = make(chan task, 1)
		wg.Add(1)
		go func(wi int, w Worker) {
			defer wg.Done()
			for {
				select {
				case <-runCtx.Done():
					return
				case t := <-feeds[wi]:
					jr.attempt(t.index, t.attempt, w.Name())
					logf("dispatch: shard %d attempt %d/%d on %s", t.index, t.attempt, maxAttempts, w.Name())
					emit(ProgressEvent{Kind: ProgressAttempt, Shard: t.index, Attempt: t.attempt, Worker: w.Name()})
					o := outcome{task: t, workerIdx: wi, worker: w.Name()}
					o.file, o.err = runAttempt(runCtx, w, spec, t.index, paths[t.index], params, runNames, opts.AttemptTimeout)
					select {
					case results <- o:
					case <-runCtx.Done():
						return
					}
				}
			}
		}(i, w)
	}

	idle := make([]int, len(workers))
	for i := range idle {
		idle[i] = i
	}
	// tryAssign hands queued tasks to idle workers, preferring for each
	// task a worker that has not failed it yet; tasks whose only fresh
	// workers are busy stay queued until one frees up.
	tryAssign := func() {
		for len(idle) > 0 {
			assigned := false
			for pi := 0; pi < len(pending) && !assigned; pi++ {
				t := pending[pi]
				pick := -1
				for ii, wi := range idle {
					if !t.failedOn[wi] {
						pick = ii
						break
					}
				}
				if pick == -1 && len(t.failedOn) >= len(workers) {
					pick = 0 // every worker failed it once; anyone may retry
				}
				if pick == -1 {
					continue
				}
				wi := idle[pick]
				idle = append(idle[:pick], idle[pick+1:]...)
				pending = append(pending[:pi], pending[pi+1:]...)
				feeds[wi] <- t // cap 1 and the worker is idle: never blocks
				assigned = true
			}
			if !assigned {
				return
			}
		}
	}

	// The auto-partial ticker shares the coordinator loop, so it reads the
	// files slice race-free between completions.
	var partialTick <-chan time.Time
	if opts.PartialEvery > 0 {
		ticker := time.NewTicker(opts.PartialEvery)
		defer ticker.Stop()
		partialTick = ticker.C
	}
	partialSaved := -1 // done-count at the last successful write
	savePartial := func() {
		done := 0
		for _, f := range files {
			if f != nil {
				done++
			}
		}
		if done == partialSaved {
			// Nothing completed since the last write: re-merging would
			// only rewrite identical bytes from the coordinator loop.
			return
		}
		path, present, cells, err := writePartial(opts.Dir, files)
		if err != nil {
			// A failed provisional write must not kill the sweep it
			// observes; the next tick retries. It must stay visible even
			// when only the progress stream is watched (the CLI's
			// -progress mode discards Logf), so it is also emitted as a
			// partial event carrying the error.
			logf("dispatch: partial merge: %v", err)
			emit(ProgressEvent{Kind: ProgressPartial, Shard: -1, Err: err.Error()})
			return
		}
		partialSaved = done
		if path == "" {
			return
		}
		jr.partial(path, present, cells)
		logf("dispatch: partial merge: %d/%d shards (%d cells) written to %s", present, spec.Shards, cells, path)
		emit(ProgressEvent{Kind: ProgressPartial, Shards: present, Shard: -1, File: path, Cells: cells})
	}

	remaining := len(pending)
	tryAssign()
	var fatal error
	for remaining > 0 && fatal == nil {
		select {
		case <-ctx.Done():
			fatal = ctx.Err()
		case <-partialTick:
			savePartial()
		case t := <-requeue:
			pending = append(pending, t)
			tryAssign()
		case o := <-results:
			idle = append(idle, o.workerIdx)
			a := Attempt{Shard: o.index, Attempt: o.attempt, Worker: o.worker}
			if o.err != nil {
				a.Err = o.err.Error()
			}
			res.Attempts = append(res.Attempts, a)
			if o.err == nil {
				files[o.index] = o.file
				deposit(o.file)
				jr.done(o.index, o.attempt, paths[o.index])
				logf("dispatch: shard %d/%d complete (attempt %d on %s)", o.index, spec.Shards, o.attempt, o.worker)
				emit(ProgressEvent{Kind: ProgressDone, Shard: o.index, Attempt: o.attempt, Worker: o.worker, File: paths[o.index]})
				remaining--
				tryAssign()
				continue
			}
			jr.fail(o.index, o.attempt, o.worker, o.err)
			emit(ProgressEvent{Kind: ProgressFailed, Shard: o.index, Attempt: o.attempt, Worker: o.worker, Err: o.err.Error()})
			if o.attempt >= maxAttempts {
				fatal = fmt.Errorf("dispatch: shard %d failed all %d attempts, last on %s: %w",
					o.index, o.attempt, o.worker, o.err)
				continue
			}
			logf("dispatch: shard %d attempt %d on %s failed, retrying: %v", o.index, o.attempt, o.worker, o.err)
			res.Retries++
			retry := task{index: o.index, attempt: o.attempt + 1, failedOn: o.failedOn}
			if retry.failedOn == nil {
				retry.failedOn = make(map[int]bool)
			}
			retry.failedOn[o.workerIdx] = true
			if opts.RetryDelay > 0 {
				go func() {
					select {
					case <-time.After(opts.RetryDelay):
						requeue <- retry
					case <-runCtx.Done():
					}
				}()
			} else {
				pending = append(pending, retry)
			}
			tryAssign()
		}
	}
	cancel()
	wg.Wait()
	return fatal
}

// writePartial merges the validated shard files completed so far into the
// dispatch directory's partial.json and returns its path, present-shard
// count and covered cells. It writes nothing — returning "" — when no
// shard has completed yet or the cover is already complete (the final
// merge is about to supersede it).
func writePartial(dir string, files []*shard.File) (string, int, int, error) {
	var have []*shard.File
	for _, f := range files {
		if f != nil {
			have = append(have, f)
		}
	}
	if len(have) == 0 || len(have) == len(files) {
		return "", 0, 0, nil
	}
	cover, err := shard.MergePartial(have)
	if err != nil {
		return "", 0, 0, err
	}
	// Write-then-rename: the file is documented as renderable at any
	// moment, so a concurrent "merge -partial" must never observe a
	// truncated in-place rewrite.
	path := filepath.Join(dir, partialFileName)
	tmp := path + ".tmp"
	if err := cover.File.WriteFile(tmp); err != nil {
		return "", 0, 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, 0, err
	}
	return path, len(cover.Present), cover.CellsHave(), nil
}

// cachedShardFile tries to satisfy shard index from the cell cache: it
// builds the file purely from cached cells (experiment.CachedShard),
// writes it to the shard path, and re-validates it from disk exactly
// like a worker's output. Any gap or failure returns nil — the shard is
// queued normally. A nil cache returns nil immediately.
func cachedShardFile(cache *cellcache.Store, spec Spec, index int, path string,
	params []byte, runNames []string, logf func(string, ...any)) *shard.File {
	if cache == nil {
		return nil
	}
	f, ok, err := experiment.CachedShard(cache, spec.Selection, spec.Params, spec.Shards, index)
	if err != nil {
		logf("dispatch: cache probe for shard %d: %v", index, err)
		return nil
	}
	if !ok {
		return nil
	}
	if err := f.WriteFile(path); err != nil {
		logf("dispatch: writing cached shard %d: %v", index, err)
		return nil
	}
	// The cached file passes the exact gate a worker's file must pass, so
	// a cache bug is a re-queued shard, never a silently merged one.
	vf, err := validateShardFile(path, spec, index, params, runNames)
	if err != nil {
		logf("dispatch: cached shard %d failed validation (%v); re-running", index, err)
		return nil
	}
	return vf
}

// runAttempt runs one shard attempt under the per-attempt timeout and
// validates the produced file, returning its decoded form on success.
func runAttempt(ctx context.Context, w Worker, spec Spec, index int, path string,
	params []byte, runNames []string, timeout time.Duration) (*shard.File, error) {
	actx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	// Drop any partial file a previous attempt left, so validation can
	// never accept stale output.
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("dispatch: %w", err)
	}
	var f *shard.File
	err := w.Run(actx, Task{Spec: spec, Index: index, Out: path})
	if err == nil {
		f, err = validateShardFile(path, spec, index, params, runNames)
	}
	if err != nil && actx.Err() != nil && ctx.Err() == nil {
		return nil, fmt.Errorf("dispatch: attempt exceeded the %v timeout: %w", timeout, err)
	}
	return f, err
}

// validateShardFile accepts a worker's output only if it is a decodable
// shard file of exactly this run — right selection, decomposition and
// params, the selection's canonical runs, and every owned cell present
// exactly once (File.ValidateCells) — and returns the decoded file so
// the driver never parses a shard twice. Anything else counts as a
// failed attempt and is retried.
func validateShardFile(path string, spec Spec, index int, params []byte, runNames []string) (*shard.File, error) {
	f, err := shard.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if f.Selection != spec.Selection {
		return nil, fmt.Errorf("dispatch: %s records selection %q, want %q", path, f.Selection, spec.Selection)
	}
	if f.Shards != spec.Shards || f.Index != index {
		return nil, fmt.Errorf("dispatch: %s records shard %d/%d, want %d/%d",
			path, f.Index, f.Shards, index, spec.Shards)
	}
	var got bytes.Buffer
	if err := json.Compact(&got, f.Params); err != nil {
		return nil, fmt.Errorf("dispatch: %s params: %w", path, err)
	}
	if !bytes.Equal(got.Bytes(), params) {
		return nil, fmt.Errorf("dispatch: %s was produced by a different run (params mismatch: %s)",
			path, shard.DiffParams(params, got.Bytes()))
	}
	if len(f.Runs) != len(runNames) {
		return nil, fmt.Errorf("dispatch: %s holds %d runs, want %d", path, len(f.Runs), len(runNames))
	}
	for i, r := range f.Runs {
		if r.Experiment != runNames[i] {
			return nil, fmt.Errorf("dispatch: %s run %d is %q, want %q", path, i, r.Experiment, runNames[i])
		}
	}
	// The registry knows what each run must look like under these params:
	// the grid the experiment derives from them, and the payload layout
	// its codec reads. A worker built against a different layout is a
	// failed attempt, not a mergeable file.
	if err := experiment.ValidateRuns(f, spec.Params); err != nil {
		return nil, fmt.Errorf("dispatch: %s: %w", path, err)
	}
	if err := f.ValidateCells(); err != nil {
		return nil, err
	}
	return f, nil
}
