package dispatch

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Journal observability: ReadJournal decodes a dispatch journal — of a
// finished, interrupted or still-running dispatch — into a JournalState
// that answers the operator questions the CLI's "status" subcommand
// prints: which shards are done, which are missing, what failed where,
// and whether the cover has merged. It is a pure reader: it never locks,
// truncates or appends, so it is always safe to run against a live
// dispatch directory.

// JournalShard summarises one shard's (or, in a balanced dispatch, one
// cell batch's — they share the id space) journaled lifecycle.
type JournalShard struct {
	Index int
	// State is the shard's latest journaled state. A "running" shard of a
	// dead dispatch was interrupted mid-attempt and will re-run on
	// resume.
	State ShardState
	// Attempts counts journaled attempt and steal events; Fails counts
	// failed ones; Steals counts the steal events alone.
	Attempts, Fails, Steals int
	// Worker is the last worker to touch the shard.
	Worker string
	// Winner is the worker whose copy completed the shard (recorded on
	// the done event; "" in journals predating the field and on cached
	// shards).
	Winner string
	// Err is the last recorded failure, if any.
	Err string
	// File is the output path recorded when the shard completed.
	File string
	// Kind, Spec, Cells, Weight and Parent describe a balanced dispatch's
	// batch entry ("cost"/"split"/"dropped", the cell spec, the cell
	// count, the predicted weight, the split parent's id or -1). Zero on
	// classic round-robin shards; Cells is also learned from done events.
	Kind   string
	Spec   string
	Cells  int
	Weight float64
	Parent int
	// Superseded marks a batch no longer owed: a split parent (its
	// children carry the cells now) or a batch a resume re-planned away.
	Superseded bool
	// Duration is the wall-clock from the last attempt/steal start to the
	// done event (0 when unknown or cached).
	Duration time.Duration
}

// JournalState is the decoded state of one dispatch journal.
type JournalState struct {
	// Path is the journal file read.
	Path string
	// Version is the journal schema version of the plan event (a missing
	// field reads as 1; see JournalVersion).
	Version int
	// Selection, Shards and Params are the plan: which run the directory
	// belongs to. Balance is the plan's decomposition ("" in round-robin
	// journals, which never record the field).
	Selection string
	Shards    int
	Params    json.RawMessage
	Balance   string
	// ShardStates holds one entry per shard, indexed by shard.
	ShardStates []JournalShard
	// Merged reports whether the final merge event was journaled;
	// MergedCells is its recorded cell count.
	Merged      bool
	MergedCells int
	// PartialFile is the latest journaled auto-partial-merge output, with
	// PartialShards present shards covering PartialCells cells ("" if
	// none was journaled).
	PartialFile   string
	PartialShards int
	PartialCells  int
}

// ReadJournalDir reads the journal inside a dispatch directory.
func ReadJournalDir(dir string) (*JournalState, error) {
	return ReadJournal(filepath.Join(dir, JournalFileName))
}

// ReadJournal reads and decodes one dispatch journal. Unparseable lines
// (a crash can truncate the final line) and unknown event types are
// skipped; a journal without a plan event — or with a plan of a newer
// schema version — is rejected rather than half-understood.
func ReadJournal(path string) (*JournalState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("dispatch: journal: %w", err)
	}
	return parseJournal(path, data)
}

// parseJournal decodes journal bytes; path is used in messages only.
// Split from ReadJournal so the parser is fuzzable without file IO.
func parseJournal(path string, data []byte) (*JournalState, error) {
	st := &JournalState{Path: path}
	sawPlan := false
	shardAt := func(i int) *JournalShard {
		if i < 0 {
			return nil
		}
		for len(st.ShardStates) <= i {
			st.ShardStates = append(st.ShardStates, JournalShard{Index: len(st.ShardStates), State: ShardPending, Parent: -1})
		}
		return &st.ShardStates[i]
	}
	// lastStart[id] is the most recent attempt/steal time, feeding the
	// done event's Duration.
	lastStart := make(map[int]time.Time)
	at := func(e journalEvent) time.Time {
		t, err := time.Parse(time.RFC3339Nano, e.Time)
		if err != nil {
			return time.Time{}
		}
		return t
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var e journalEvent
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			continue
		}
		switch e.Event {
		case "plan":
			if e.V > JournalVersion {
				return nil, fmt.Errorf("dispatch: journal %s is version %d, this build reads %d", path, e.V, JournalVersion)
			}
			st.Version = e.V
			if st.Version == 0 {
				st.Version = 1
			}
			st.Selection, st.Shards, st.Params = e.Selection, e.Shards, e.Params
			st.Balance = e.Balance
			// A balanced plan's batches are announced by batch events, not
			// the shard count; only pre-extend round-robin journals.
			if e.Balance == "" {
				shardAt(e.Shards - 1)
			}
			sawPlan = true
		case "batch":
			if e.Shard != nil {
				if s := shardAt(*e.Shard); s != nil {
					s.Kind, s.Spec, s.Cells, s.Weight = e.Kind, e.Spec, e.Cells, e.Weight
					if e.Parent != nil {
						s.Parent = *e.Parent
						// A split's children own the parent's cells now.
						if p := shardAt(*e.Parent); p != nil {
							p.Superseded = true
						}
					}
					if e.Kind == "dropped" {
						// A resume re-planned this batch away; nobody owes it.
						s.Superseded = true
					}
				}
			}
		case "attempt", "steal":
			if e.Shard != nil {
				if s := shardAt(*e.Shard); s != nil {
					s.Attempts++
					if e.Event == "steal" {
						s.Steals++
					}
					s.State, s.Worker, s.Err = ShardRunning, e.Worker, ""
					lastStart[*e.Shard] = at(e)
				}
			}
		case "fail":
			if e.Shard != nil {
				if s := shardAt(*e.Shard); s != nil {
					s.Fails++
					s.State, s.Worker, s.Err = ShardFailed, e.Worker, e.Error
				}
			}
		case "done":
			if e.Shard != nil {
				if s := shardAt(*e.Shard); s != nil {
					s.State, s.File, s.Err = ShardDone, e.File, ""
					s.Winner = e.Worker
					if e.Cells > 0 {
						s.Cells = e.Cells
					}
					if start, ok := lastStart[*e.Shard]; ok && !start.IsZero() {
						if end := at(e); !end.IsZero() && end.After(start) {
							s.Duration = end.Sub(start)
						}
					}
				}
			}
		case "cached":
			// A cached shard's file was written from the cell cache and
			// validated like any worker's; for resume and status it is done.
			if e.Shard != nil {
				if s := shardAt(*e.Shard); s != nil {
					s.State, s.File, s.Err = ShardDone, e.File, ""
				}
			}
		case "partial":
			st.PartialFile, st.PartialShards, st.PartialCells = e.File, e.Shards, e.Cells
		case "merged":
			st.Merged, st.MergedCells = true, e.Cells
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dispatch: journal %s: %w", path, err)
	}
	if !sawPlan {
		return nil, fmt.Errorf("dispatch: journal %s carries no plan event", path)
	}
	return st, nil
}

// DoneCount returns the number of shards journaled done.
func (s *JournalState) DoneCount() int {
	n := 0
	for _, sh := range s.ShardStates {
		if sh.State == ShardDone {
			n++
		}
	}
	return n
}

// Missing returns the shard indices not journaled done, ascending — on a
// dead dispatch, exactly the indices a resume (or a by-hand re-run) still
// owes. Superseded batches (split parents, re-planned-away entries) are
// owed by nobody and skipped.
func (s *JournalState) Missing() []int {
	var out []int
	for _, sh := range s.ShardStates {
		if sh.State != ShardDone && !sh.Superseded {
			out = append(out, sh.Index)
		}
	}
	return out
}

// Failed returns the shard indices with at least one journaled failed
// attempt, ascending (they may have succeeded on retry — check State).
func (s *JournalState) Failed() []int {
	var out []int
	for _, sh := range s.ShardStates {
		if sh.Fails > 0 {
			out = append(out, sh.Index)
		}
	}
	return out
}
