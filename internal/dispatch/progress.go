package dispatch

import (
	"sync"
	"time"
)

// ProgressVersion identifies the progress-event schema. It is bumped
// whenever an event kind is removed or a field changes meaning; adding
// kinds or fields is backwards-compatible. The schema is specified in
// docs/DISPATCH.md alongside the journal it mirrors.
const ProgressVersion = 1

// ProgressKind names one kind of progress event. The kinds mirror the
// journal's event types one-to-one (plus "resumed", which the journal
// expresses as a pre-existing "done" entry).
type ProgressKind string

// The progress-event kinds of schema version 1.
const (
	// ProgressPlan opens the stream: Shards carries the total count.
	ProgressPlan ProgressKind = "plan"
	// ProgressResumed reports a shard satisfied from the journal without
	// running.
	ProgressResumed ProgressKind = "resumed"
	// ProgressCached reports a shard satisfied from the cell cache
	// without running (File carries the shard file written from it) — a
	// compatible addition to schema version 1; old consumers ignore it.
	ProgressCached ProgressKind = "cached"
	// ProgressAttempt reports a worker starting an attempt at a shard.
	ProgressAttempt ProgressKind = "attempt"
	// ProgressBatch announces one planned cell batch of a balanced
	// dispatch (Shard = batch id, Cells = its cell count) — a compatible
	// addition to schema version 1; old consumers ignore it.
	ProgressBatch ProgressKind = "batch"
	// ProgressSteal reports an idle worker starting a duplicate attempt
	// at a straggling batch — a compatible addition to schema version 1.
	ProgressSteal ProgressKind = "steal"
	// ProgressDone reports a shard completing (file validated).
	ProgressDone ProgressKind = "done"
	// ProgressFailed reports a failed attempt (the shard may be retried).
	ProgressFailed ProgressKind = "fail"
	// ProgressPartial reports an auto-partial-merge written to the
	// dispatch directory (Options.PartialEvery) — or, with Err set, a
	// partial write that failed and will be retried at the next tick.
	ProgressPartial ProgressKind = "partial"
	// ProgressMerged closes the stream: the complete cover merged.
	ProgressMerged ProgressKind = "merged"
)

// ProgressEvent is one event of the dispatch progress stream. Events for
// concurrent attempts are delivered from multiple goroutines; handlers
// must be safe for concurrent use (Tracker is).
type ProgressEvent struct {
	// Version is the schema version (ProgressVersion).
	Version int
	// Kind is the event kind.
	Kind ProgressKind
	// Time is the driver's wall-clock instant of the event.
	Time time.Time
	// Shards carries the run's total shard count (plan, merged) or the
	// number of present shards of a partial merge (partial).
	Shards int
	// Shard is the shard index the event concerns; -1 for run-level
	// events (plan, partial, merged).
	Shard int
	// Attempt numbers the attempt at the shard, starting at 1.
	Attempt int
	// Worker names the worker running the attempt.
	Worker string
	// Err is the failure of a fail event, or of a partial event whose
	// write did not complete.
	Err string
	// File is the produced file: the shard file of a done event, the
	// partial cover file of a partial event.
	File string
	// Cells counts merged cells (merged), covered cells (partial), or the
	// cells of one shard/batch (batch, done).
	Cells int
}

// ShardState is a shard's lifecycle state as a Tracker sees it.
type ShardState string

// The shard lifecycle states.
const (
	ShardPending ShardState = "pending"
	ShardRunning ShardState = "running"
	ShardDone    ShardState = "done"
	ShardFailed  ShardState = "failed"
)

// ShardStatus is one shard's current state in a Snapshot.
type ShardStatus struct {
	State ShardState
	// Attempt is the latest attempt number seen (0 = never attempted).
	Attempt int
	// Steals counts duplicate attempts started by work stealing.
	Steals int
	// Worker is the last worker to touch the shard — for a done shard,
	// the winner whose file was kept.
	Worker string
	// Err is the last recorded failure, if any.
	Err string
}

// Snapshot is a point-in-time view of a dispatch derived purely from its
// progress events.
type Snapshot struct {
	// Shards holds the per-shard states, indexed by shard.
	Shards []ShardStatus
	// Total, Done, Running, Failed and Pending count shards by state
	// (Done includes Resumed; Failed counts shards whose latest attempt
	// failed and has not been retried yet).
	Total, Done, Running, Failed, Pending int
	// Resumed counts shards satisfied from the journal without running.
	Resumed int
	// Cached counts shards satisfied from the cell cache without running.
	Cached int
	// Steals counts duplicate attempts started by work stealing.
	Steals int
	// Elapsed is the wall-clock time since the plan event.
	Elapsed time.Duration
	// AvgShard is the mean observed wall-clock of a completed attempt;
	// 0 until the first shard completes.
	AvgShard time.Duration
	// AvgCell is the mean observed wall-clock per computed cell, when
	// every completed attempt's cell count is known; 0 otherwise.
	AvgCell time.Duration
	// ETA estimates the remaining wall-clock. When every remaining
	// shard's cell count is known (batch/done events carry them) it is
	// cell-weighted — AvgCell × remaining cells / max(1, Running) — so
	// uneven batches and cache-satisfied shards cannot skew it; otherwise
	// it falls back to AvgShard × remaining shards / max(1, Running).
	// 0 until the first shard completes (no observation to extrapolate).
	ETA time.Duration
	// Merged reports whether the final merge completed.
	Merged bool
}

// Tracker folds a progress-event stream into a queryable Snapshot: the
// standard Options.Progress consumer for live status displays. It is safe
// for concurrent use.
type Tracker struct {
	mu      sync.Mutex
	start   time.Time
	shards  []ShardStatus
	started map[int]time.Time
	cellsOf map[int]int
	resumed int
	cached  int
	steals  int
	sumDur  time.Duration
	nDur    int
	// durCells counts the cells behind sumDur's observations; blindDur
	// counts observations whose cell count was unknown (they disable the
	// cell-weighted ETA — a partial rate would skew it).
	durCells int
	blindDur int
	merged   bool
}

// NewTracker returns an empty Tracker; feed it every ProgressEvent of one
// dispatch (pass its Observe method — or a wrapper — as
// Options.Progress).
func NewTracker() *Tracker {
	return &Tracker{started: make(map[int]time.Time), cellsOf: make(map[int]int)}
}

// shard returns the tracked status slot for index i, growing the table if
// the plan event has not been seen (or lied).
func (t *Tracker) shard(i int) *ShardStatus {
	if i < 0 {
		return nil
	}
	for len(t.shards) <= i {
		t.shards = append(t.shards, ShardStatus{State: ShardPending})
	}
	return &t.shards[i]
}

// Observe folds one event into the tracked state. Unknown kinds are
// ignored, so a Tracker keeps working across compatible schema additions.
func (t *Tracker) Observe(e ProgressEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.start.IsZero() || (!e.Time.IsZero() && e.Time.Before(t.start)) {
		t.start = e.Time
	}
	switch e.Kind {
	case ProgressPlan:
		t.shard(e.Shards - 1)
	case ProgressBatch:
		if s := t.shard(e.Shard); s != nil && e.Cells > 0 {
			t.cellsOf[e.Shard] = e.Cells
		}
	case ProgressResumed:
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State = ShardDone
			t.resumed++
		}
	case ProgressCached:
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State = ShardDone
			t.cached++
		}
	case ProgressAttempt:
		// Once done, a shard stays done: late events from a racing
		// duplicate attempt must not resurrect it.
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State, s.Attempt, s.Worker, s.Err = ShardRunning, e.Attempt, e.Worker, ""
			t.started[e.Shard] = e.Time
		}
	case ProgressSteal:
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State, s.Attempt, s.Worker, s.Err = ShardRunning, e.Attempt, e.Worker, ""
			s.Steals++
			t.steals++
			// Keep the earliest start: the shard has been in flight since
			// its first attempt, and the duration should say so.
			if _, ok := t.started[e.Shard]; !ok {
				t.started[e.Shard] = e.Time
			}
		}
	case ProgressDone:
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State, s.Attempt, s.Worker = ShardDone, e.Attempt, e.Worker
			if e.Cells > 0 {
				t.cellsOf[e.Shard] = e.Cells
			}
			if at, ok := t.started[e.Shard]; ok && !e.Time.Before(at) {
				t.sumDur += e.Time.Sub(at)
				t.nDur++
				if c := t.cellsOf[e.Shard]; c > 0 {
					t.durCells += c
				} else {
					t.blindDur++
				}
				delete(t.started, e.Shard)
			}
		}
	case ProgressFailed:
		if s := t.shard(e.Shard); s != nil && s.State != ShardDone {
			s.State, s.Attempt, s.Worker, s.Err = ShardFailed, e.Attempt, e.Worker, e.Err
			delete(t.started, e.Shard)
		}
	case ProgressMerged:
		t.merged = true
	}
}

// Snapshot returns the current state, with Elapsed and ETA measured
// against time.Now.
func (t *Tracker) Snapshot() Snapshot { return t.SnapshotAt(time.Now()) }

// SnapshotAt returns the current state measured against an explicit
// instant (deterministic displays and tests).
func (t *Tracker) SnapshotAt(now time.Time) Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := Snapshot{
		Shards:  append([]ShardStatus(nil), t.shards...),
		Total:   len(t.shards),
		Resumed: t.resumed,
		Cached:  t.cached,
		Steals:  t.steals,
		Merged:  t.merged,
	}
	remainingCells, cellsKnown := 0, true
	for i, st := range t.shards {
		switch st.State {
		case ShardDone:
			s.Done++
		case ShardRunning:
			s.Running++
		case ShardFailed:
			s.Failed++
		default:
			s.Pending++
		}
		if st.State != ShardDone {
			if c := t.cellsOf[i]; c > 0 {
				remainingCells += c
			} else {
				cellsKnown = false
			}
		}
	}
	if !t.start.IsZero() && now.After(t.start) {
		s.Elapsed = now.Sub(t.start)
	}
	if t.nDur > 0 {
		s.AvgShard = t.sumDur / time.Duration(t.nDur)
		if t.durCells > 0 && t.blindDur == 0 {
			s.AvgCell = t.sumDur / time.Duration(t.durCells)
		}
		if remaining := s.Pending + s.Running + s.Failed; remaining > 0 {
			width := s.Running
			if width < 1 {
				width = 1
			}
			if s.AvgCell > 0 && cellsKnown {
				// Cell-weighted: a shard whose cells all came from the cache
				// completed in near-zero time over few computed cells — the
				// per-cell rate, not the per-shard mean, predicts the rest.
				s.ETA = s.AvgCell * time.Duration(remainingCells) / time.Duration(width)
			} else {
				s.ETA = s.AvgShard * time.Duration(remaining) / time.Duration(width)
			}
		}
	}
	return s
}
