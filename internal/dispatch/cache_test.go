package dispatch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cellcache"
	"repro/internal/experiment"
)

// TestDispatchWarmCache: a dispatch whose cell cache already holds every
// cell serves all shards from the cache — journalling them as "cached",
// never queueing them to a worker — and still merges byte-identically to
// the unsharded run. The worker pool refuses every task, so any re-queue
// is a hard failure, not a silent slowdown.
func TestDispatchWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpAll, 3)
	want := refEncoded(t, spec)
	cacheDir := t.TempDir()

	// Cold pass with honest workers: Options.Cache deposits every
	// validated shard file's cells into the store.
	cold, err := cellcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), spec, pool(3, goodRun), Options{Cache: cold})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Cached != 0 || res.Ran != 3 {
		t.Fatalf("cold cached/ran = %d/%d, want 0/3", res.Cached, res.Ran)
	}

	// Warm pass over a fresh directory: no journal to resume from, no
	// working workers — only the cache can satisfy the shards.
	warm, err := cellcache.Open(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	refuse := pool(3, func(context.Context, Task) error {
		return fmt.Errorf("worker invoked despite a warm cache")
	})
	dir := t.TempDir()
	var events []ProgressEvent
	tr := NewTracker()
	res, err = Run(context.Background(), spec, refuse, Options{
		Cache: warm,
		Dir:   dir,
		Progress: func(e ProgressEvent) {
			tr.Observe(e)
			events = append(events, e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Cached != 3 || res.Ran != 0 || res.Resumed != 0 || res.Retries != 0 {
		t.Fatalf("warm cached/ran/resumed/retries = %d/%d/%d/%d, want 3/0/0/0",
			res.Cached, res.Ran, res.Resumed, res.Retries)
	}

	// The progress stream reported every shard as cached, none attempted.
	snap := tr.Snapshot()
	if snap.Cached != 3 || snap.Done != 3 || !snap.Merged {
		t.Fatalf("tracker snapshot = %+v, want 3 cached and merged", snap)
	}
	for _, e := range events {
		if e.Kind == ProgressAttempt {
			t.Fatalf("attempt event for shard %d despite a warm cache", e.Shard)
		}
	}

	// The journal records the shards as cached — and a resume over the
	// same directory (cache off, workers broken) trusts the written files.
	js, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := js.DoneCount(); got != 3 {
		t.Fatalf("journal records %d shards done, want 3", got)
	}
	raw, err := os.ReadFile(filepath.Join(dir, JournalFileName))
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(raw), `"event":"cached"`); n != 3 {
		t.Fatalf("journal carries %d cached events, want 3:\n%s", n, raw)
	}
	res, err = Run(context.Background(), spec, refuse, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Resumed != 3 || res.Cached != 0 || res.Ran != 0 {
		t.Fatalf("resume resumed/cached/ran = %d/%d/%d, want 3/0/0", res.Resumed, res.Cached, res.Ran)
	}
}

// TestDispatchPartialCache: with only some cells cached, the warm shards
// come from the cache and the rest run normally — the two paths mix in
// one dispatch and the merge stays byte-identical.
func TestDispatchPartialCache(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	want := refEncoded(t, spec)

	// Seed the cache with shard 1's cells only.
	store, err := cellcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	f, err := experiment.RunShard(spec.Selection, spec.Params, 1, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiment.DepositFile(store, f, spec.Params); err != nil {
		t.Fatal(err)
	}

	res, err := Run(context.Background(), spec, pool(2, goodRun), Options{Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Cached != 1 || res.Ran != 2 {
		t.Fatalf("cached/ran = %d/%d, want 1/2", res.Cached, res.Ran)
	}
}
