package dispatch

import (
	"testing"
)

// FuzzParseJournal throws arbitrary bytes at the journal parser: it must
// never panic, and any state it accepts must be internally coherent —
// the tolerant-reader contract (skip bad lines, skip unknown events,
// reject planless or too-new journals) that both resume and the status
// subcommand depend on.
func FuzzParseJournal(f *testing.F) {
	f.Add([]byte(`{"event":"plan","v":1,"selection":"all","shards":3,"params":{"Systems":4}}` + "\n" +
		`{"event":"attempt","shard":0,"attempt":1,"worker":"w0"}` + "\n" +
		`{"event":"done","shard":0,"attempt":1,"worker":"w0","file":"shard0.json","cells":12}` + "\n" +
		`{"event":"merged","shards":3,"cells":36}` + "\n"))
	f.Add([]byte(`{"event":"plan","v":1,"selection":"fig5","shards":2,"balance":"cost"}` + "\n" +
		`{"event":"batch","shard":0,"kind":"cost","spec":"fig5=0-4","cells":5,"weight":2.5}` + "\n" +
		`{"event":"fail","shard":0,"attempt":1,"worker":"w1","error":"boom"}` + "\n"))
	f.Add([]byte(`{"event":"plan","v":99}` + "\n"))
	f.Add([]byte(`not json at all` + "\n" + `{"event":"plan","v":1,"shards":1}` + "\n"))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := parseJournal("fuzz.journal", data)
		if err != nil {
			return
		}
		if st.Version < 1 || st.Version > JournalVersion {
			t.Fatalf("accepted journal version %d outside [1,%d]", st.Version, JournalVersion)
		}
		done := st.DoneCount()
		if done > len(st.ShardStates) {
			t.Fatalf("DoneCount %d exceeds %d shard states", done, len(st.ShardStates))
		}
		for i, sh := range st.ShardStates {
			if sh.Index != i {
				t.Fatalf("shard state %d carries index %d", i, sh.Index)
			}
		}
		for _, idx := range st.Missing() {
			if idx < 0 || idx >= len(st.ShardStates) {
				t.Fatalf("Missing() returned out-of-range index %d", idx)
			}
			if st.ShardStates[idx].State == ShardDone {
				t.Fatalf("Missing() returned done shard %d", idx)
			}
		}
	})
}
