package dispatch

// Tests for cost-balanced decomposition and the work-stealing queue: the
// merged output must stay byte-identical to the unsharded run whatever
// the decomposition, steal races must resolve to exactly one journaled
// winner, a failed batch must re-split, and an interrupted balanced
// dispatch must resume re-running only the cells it still owes.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cellcache"
	"repro/internal/experiment"
	"repro/internal/shard"
)

// goodBatchRun is the honest balanced-dispatch worker behaviour: compute
// exactly the task's cells (or its classic shard share) and persist them.
func goodBatchRun(ctx context.Context, t Task) error {
	if t.Cells == "" {
		return goodRun(ctx, t)
	}
	_, sets, err := shard.ParseCellSpec(t.Cells)
	if err != nil {
		return err
	}
	f, err := experiment.RunBatchCached(t.Spec.Selection, t.Spec.Params, 1, sets, nil)
	if err != nil {
		return err
	}
	return f.WriteFile(t.Out)
}

// TestDispatchCostBalanceEquivalence: a cost-packed dispatch over every
// experiment merges byte-identically to the unsharded run, and the
// journal records the balanced plan.
func TestDispatchCostBalanceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpAll, 3)
	want := refEncoded(t, spec)
	dir := t.TempDir()
	res, err := Run(context.Background(), spec, pool(3, goodBatchRun),
		Options{Dir: dir, Balance: BalanceCost})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Ran == 0 || res.Resumed != 0 || res.Retries != 0 {
		t.Fatalf("ran/resumed/retries = %d/%d/%d", res.Ran, res.Resumed, res.Retries)
	}
	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Balance != BalanceCost {
		t.Fatalf("journal balance = %q, want %q", st.Balance, BalanceCost)
	}
	if !st.Merged || len(st.Missing()) != 0 {
		t.Fatalf("journal: merged=%v missing=%v", st.Merged, st.Missing())
	}
	for _, sh := range st.ShardStates {
		if sh.Kind != "cost" || sh.Spec == "" || sh.Cells == 0 {
			t.Fatalf("batch %d not journaled as a planned cost batch: %+v", sh.Index, sh)
		}
	}
}

func TestDispatchRejectsUnknownBalance(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 2)
	_, err := Run(context.Background(), spec, pool(1, goodBatchRun), Options{Balance: "lottery"})
	if err == nil || !strings.Contains(err.Error(), "lottery") {
		t.Fatalf("unknown balance accepted: %v", err)
	}
}

// releaseSet gates in-process workers on externally-controlled channels,
// so steal races resolve in a deterministic order without sleeps.
// Releases are sticky: releasing an id before any worker asked for its
// gate hands later askers an already-open gate (the coordinator may win
// a steal before the losing worker's goroutine even started).
type releaseSet struct {
	mu       sync.Mutex
	ch       map[int]chan struct{}
	released map[int]bool
	all      bool
}

func newReleaseSet() *releaseSet {
	return &releaseSet{ch: make(map[int]chan struct{}), released: make(map[int]bool)}
}

func (r *releaseSet) gate(id int) chan struct{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.ch[id]
	if !ok {
		c = make(chan struct{})
		r.ch[id] = c
		if r.all || r.released[id] {
			close(c)
			r.released[id] = true
		}
	}
	return c
}

func (r *releaseSet) release(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.released[id] {
		return
	}
	r.released[id] = true
	if c, ok := r.ch[id]; ok {
		close(c)
	}
}

func (r *releaseSet) releaseAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.all = true
	for id, c := range r.ch {
		if !r.released[id] {
			close(c)
			r.released[id] = true
		}
	}
}

// TestDispatchStealFirstCompletionWins choreographs a steal race with
// channel gates: two workers hold both batches open, a third idle worker
// steals one and wins, and the loser's late completion must be discarded
// as a duplicate — never journaled over the winner — with the merge still
// byte-identical.
//
// Order of events, enforced by the gates (no timing assumptions):
//  1. w0 and w1 each start a batch and block on its gate; idle w2 steals
//     the heavier batch and computes immediately.
//  2. w2's done event releases that batch's gate: its original holder
//     computes too and delivers a late duplicate completion.
//  3. The driver's "duplicate completion" log line releases every other
//     gate, letting the remaining batch finish and the dispatch merge.
func TestDispatchStealFirstCompletionWins(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	dir := t.TempDir()
	rs := newReleaseSet()

	blocker := func(name string) Worker {
		return &funcWorker{name: name, run: func(ctx context.Context, task Task) error {
			gate := rs.gate(task.Index)
			select {
			case <-gate:
			case <-ctx.Done():
				return ctx.Err()
			}
			return goodBatchRun(ctx, task)
		}}
	}
	var thiefTasks atomic.Int64
	thief := &funcWorker{name: "thief", run: func(ctx context.Context, task Task) error {
		if thiefTasks.Add(1) == 1 {
			return goodBatchRun(ctx, task) // first (stolen) task: win the race
		}
		gate := rs.gate(task.Index)
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
		return goodBatchRun(ctx, task)
	}}
	workers := []Worker{blocker("w0"), blocker("w1"), thief}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := Run(ctx, spec, workers, Options{
		Dir:         dir,
		Balance:     BalanceCost,
		Steal:       true,
		MaxAttempts: 2,
		Logf: func(format string, args ...any) {
			if strings.Contains(fmt.Sprintf(format, args...), "duplicate completion") {
				rs.releaseAll()
			}
		},
		Progress: func(e ProgressEvent) {
			if e.Kind == ProgressDone {
				rs.release(e.Shard)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Steals == 0 {
		t.Fatal("no steal recorded")
	}
	if res.Duplicates == 0 {
		t.Fatal("the losing copy's completion was not discarded as a duplicate")
	}

	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, sh := range st.ShardStates {
		if sh.Steals > 0 {
			stolen++
			if sh.State != ShardDone || sh.Winner == "" {
				t.Fatalf("stolen batch %d has no journaled winner: %+v", sh.Index, sh)
			}
		}
		// First completion wins and the record ends there: a late loser
		// outcome must never flip a done batch back to failed.
		if sh.State != ShardDone {
			t.Fatalf("batch %d not done after the race: %+v", sh.Index, sh)
		}
	}
	if stolen == 0 {
		t.Fatal("journal records no stolen batch")
	}
	raw, err := os.ReadFile(filepath.Join(dir, JournalFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"event":"steal"`) {
		t.Fatalf("journal carries no steal event:\n%s", raw)
	}
}

// TestDispatchCostSplitOnRetry: a failed cost batch with no concurrent
// copy re-splits into two child batches, the parent is superseded, and
// the merge over the mixed batch set stays byte-identical.
func TestDispatchCostSplitOnRetry(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	dir := t.TempDir()
	sab := &sabotage{target: 0, mode: "crash"}
	run := func(ctx context.Context, task Task) error {
		if task.Index == sab.target && sab.arm() {
			return fmt.Errorf("injected crash")
		}
		return goodBatchRun(ctx, task)
	}
	res, err := Run(context.Background(), spec, pool(1, run),
		Options{Dir: dir, Balance: BalanceCost, MaxAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Retries == 0 {
		t.Fatal("no retry recorded for the split")
	}

	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.ShardStates[0].Superseded {
		t.Fatalf("split parent not superseded: %+v", st.ShardStates[0])
	}
	children := 0
	for _, sh := range st.ShardStates {
		if sh.Kind == "split" {
			children++
			if sh.Parent != 0 {
				t.Fatalf("split child %d has parent %d, want 0", sh.Index, sh.Parent)
			}
			if sh.State != ShardDone {
				t.Fatalf("split child %d not done: %+v", sh.Index, sh)
			}
		}
	}
	if children != 2 {
		t.Fatalf("journal records %d split children, want 2", children)
	}
	if len(st.Missing()) != 0 || !st.Merged {
		t.Fatalf("missing=%v merged=%v", st.Missing(), st.Merged)
	}
}

// TestDispatchCostResume kills a balanced dispatch mid-run and resumes it
// with a warm cell cache: the journal must carry the completed batch
// across (resumed), re-plan the dead batch's cells (journaled "dropped"),
// satisfy them from the cache without invoking any worker, and merge
// byte-identically — plan, steal-capable attempts and cached events all
// interleaved in one journal.
func TestDispatchCostResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	dir := t.TempDir()

	broken := func(ctx context.Context, task Task) error {
		if task.Index == 1 {
			return fmt.Errorf("injected permanent failure")
		}
		return goodBatchRun(ctx, task)
	}
	if _, err := Run(context.Background(), spec, pool(1, broken),
		Options{Dir: dir, Balance: BalanceCost, MaxAttempts: 1}); err == nil {
		t.Fatal("first dispatch should have failed")
	}

	// Warm a cache with the full run, so the resume can cover the dead
	// batch's cells without a single worker invocation.
	store, err := cellcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	full, err := experiment.RunShard(spec.Selection, spec.Params, 1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := experiment.DepositFile(store, full, spec.Params); err != nil {
		t.Fatal(err)
	}
	refuse := pool(1, func(context.Context, Task) error {
		return fmt.Errorf("worker invoked despite a warm cache")
	})
	res, err := Run(context.Background(), spec, refuse,
		Options{Dir: dir, Balance: BalanceCost, Steal: true, Cache: store})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Resumed != 1 || res.Cached == 0 || res.Ran != 0 {
		t.Fatalf("resumed/cached/ran = %d/%d/%d, want 1/>0/0", res.Resumed, res.Cached, res.Ran)
	}

	raw, err := os.ReadFile(filepath.Join(dir, JournalFileName))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"kind":"dropped"`, `"event":"cached"`, `"balance":"cost"`} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("journal missing %s:\n%s", want, raw)
		}
	}
	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Merged || len(st.Missing()) != 0 {
		t.Fatalf("resumed journal: merged=%v missing=%v", st.Merged, st.Missing())
	}
}

// TestDispatchBalanceMismatchRejected: a directory journaled under one
// decomposition refuses a dispatch under another — mixing shard sets
// would corrupt resume.
func TestDispatchBalanceMismatchRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, pool(2, goodBatchRun),
		Options{Dir: dir, Balance: BalanceCost}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), spec, pool(2, goodBatchRun), Options{Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "balanced") {
		t.Fatalf("balance mismatch accepted: %v", err)
	}
}

// TestTrackerCellWeightedETA pins the cached-shard ETA fix: a shard
// satisfied from the cache contributes no observation, and with per-batch
// cell counts known the ETA weights by cells, so a cheap completed batch
// cannot make an expensive remaining one look quick.
func TestTrackerCellWeightedETA(t *testing.T) {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	tr := NewTracker()
	tr.Observe(ProgressEvent{Kind: ProgressPlan, Shards: 3, Shard: -1, Time: t0})
	for i, cells := range []int{4, 2, 10} {
		tr.Observe(ProgressEvent{Kind: ProgressBatch, Shard: i, Cells: cells, Time: t0})
	}
	// Shard 0 comes from the cell cache: no attempt, no duration — it must
	// not count as a zero-duration observation.
	tr.Observe(ProgressEvent{Kind: ProgressCached, Shard: 0, Time: t0})
	// Shard 1 computes its 2 cells in 10s: 5s per cell.
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 1, Attempt: 1, Worker: "w0", Time: t0})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 1, Attempt: 1, Worker: "w0", Cells: 2, Time: at(10 * time.Second)})

	s := tr.SnapshotAt(at(10 * time.Second))
	if s.AvgCell != 5*time.Second {
		t.Fatalf("AvgCell = %v, want 5s", s.AvgCell)
	}
	// Shard 2 still owes 10 cells; the per-shard mean (10s) would predict
	// 10s, but the cell-weighted estimate knows it is 5× the work.
	if s.ETA != 50*time.Second {
		t.Fatalf("ETA = %v, want 50s (cell-weighted)", s.ETA)
	}

	// A steal keeps the earliest start, so the winner's duration spans the
	// whole in-flight window, and completion keeps the ETA at zero work.
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 2, Attempt: 1, Worker: "w0", Time: at(10 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressSteal, Shard: 2, Attempt: 2, Worker: "w1", Time: at(20 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 2, Attempt: 2, Worker: "w1", Cells: 10, Time: at(60 * time.Second)})
	s = tr.SnapshotAt(at(60 * time.Second))
	if s.Steals != 1 || s.Shards[2].Steals != 1 {
		t.Fatalf("steal counts: %+v", s)
	}
	// Observations: 10s over 2 cells, then 50s (from the *first* attempt
	// at 10s, not the steal at 20s) over 10 cells.
	if want := 60 * time.Second / 12; s.AvgCell != want {
		t.Fatalf("AvgCell = %v, want %v", s.AvgCell, want)
	}
	if s.Done != 3 || s.ETA != 0 {
		t.Fatalf("final: %+v", s)
	}
}

// TestTrackerBlindDurationFallsBack: one completion without a cell count
// disables the cell-weighted ETA (a partial rate would skew it) in favour
// of the per-shard mean.
func TestTrackerBlindDurationFallsBack(t *testing.T) {
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	tr := NewTracker()
	tr.Observe(ProgressEvent{Kind: ProgressPlan, Shards: 2, Shard: -1, Time: t0})
	tr.Observe(ProgressEvent{Kind: ProgressBatch, Shard: 1, Cells: 10, Time: t0})
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 0, Attempt: 1, Worker: "w0", Time: t0})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 0, Attempt: 1, Worker: "w0", Time: at(10 * time.Second)})
	s := tr.SnapshotAt(at(10 * time.Second))
	if s.AvgCell != 0 {
		t.Fatalf("AvgCell = %v, want 0 (blind observation)", s.AvgCell)
	}
	if s.ETA != 10*time.Second {
		t.Fatalf("ETA = %v, want 10s (AvgShard fallback)", s.ETA)
	}
}

// TestRefineCosts: observed per-cell rates from a prior journal replace
// the prediction at observed utilisation points, and scale it onto the
// observed unit everywhere else.
func TestRefineCosts(t *testing.T) {
	p := experiment.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6}
	plan, err := experiment.PlanSelection(experiment.ExpFig5, p)
	if err != nil {
		t.Fatal(err)
	}
	if refineCosts(nil, plan); plan.Costs == nil {
		t.Fatal("plan costs consumed")
	}
	if got := refineCosts(nil, plan); &got[0][0] != &plan.Costs[0][0] {
		t.Fatal("nil prior must return the predicted costs unchanged")
	}

	// One done batch: cells 0-3 (all of utilisation point 0) in 20s.
	prior := &JournalState{ShardStates: []JournalShard{{
		Index: 0, State: ShardDone, Kind: "cost",
		Spec: "fig5=0-3", Cells: 4, Duration: 20 * time.Second,
	}}}
	refined := refineCosts(prior, plan)
	for g := 0; g < 4; g++ {
		if refined[0][g] != 5.0 {
			t.Fatalf("observed cell %d rate = %v, want 5.0", g, refined[0][g])
		}
	}
	// Unobserved points keep prediction × (observed seconds / predicted
	// cost of the observed cells).
	predicted := plan.Costs[0][0] + plan.Costs[0][1] + plan.Costs[0][2] + plan.Costs[0][3]
	scale := 20.0 / predicted
	g := 4 * 1 // first cell of point 1
	if want := plan.Costs[0][g] * scale; refined[0][g] != want {
		t.Fatalf("unobserved cell scaled to %v, want %v", refined[0][g], want)
	}

	// A prior with no usable observation (running, no duration) refines
	// nothing.
	blind := &JournalState{ShardStates: []JournalShard{{Index: 0, State: ShardRunning, Spec: "fig5=0-3", Cells: 4}}}
	if got := refineCosts(blind, plan); &got[0][0] != &plan.Costs[0][0] {
		t.Fatal("blind prior must return the predicted costs unchanged")
	}
}

// TestReadJournalBalancedEvents decodes a hand-written balanced journal:
// batch/steal/dropped events and the done event's winner, cells and
// duration must all surface on the journal state.
func TestReadJournalBalancedEvents(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, JournalFileName)
	lines := []string{
		`{"event":"plan","v":1,"selection":"fig5","shards":2,"params":{"seed":1},"balance":"cost"}`,
		`{"event":"batch","shard":0,"kind":"cost","spec":"fig5=0-9","cells":10,"weight":12.5}`,
		`{"event":"batch","shard":1,"kind":"cost","spec":"fig5=10-19","cells":10,"weight":7.5}`,
		`{"time":"2026-08-07T12:00:00Z","event":"attempt","shard":0,"attempt":1,"worker":"w0"}`,
		`{"time":"2026-08-07T12:00:05Z","event":"steal","shard":0,"attempt":2,"worker":"w1"}`,
		`{"time":"2026-08-07T12:00:10Z","event":"done","shard":0,"attempt":2,"worker":"w1","file":"batch0.json.s2","cells":10}`,
		`{"time":"2026-08-07T12:00:10Z","event":"attempt","shard":1,"attempt":1,"worker":"w0"}`,
		`{"time":"2026-08-07T12:00:12Z","event":"fail","shard":1,"attempt":1,"worker":"w0","error":"boom"}`,
		`{"event":"batch","shard":2,"kind":"split","parent":1,"spec":"fig5=10-14","cells":5,"weight":3.75}`,
		`{"event":"batch","shard":3,"kind":"split","parent":1,"spec":"fig5=15-19","cells":5,"weight":3.75}`,
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Balance != "cost" {
		t.Fatalf("balance = %q", st.Balance)
	}
	b0 := st.ShardStates[0]
	if b0.State != ShardDone || b0.Winner != "w1" || b0.Steals != 1 || b0.Attempts != 2 {
		t.Fatalf("batch 0: %+v", b0)
	}
	// Duration spans the *winning* attempt (the steal at :05) — the
	// winner's compute rate, which is what cost refinement wants.
	if b0.Cells != 10 || b0.Duration != 5*time.Second || b0.Weight != 12.5 || b0.Kind != "cost" {
		t.Fatalf("batch 0 metrics: %+v", b0)
	}
	b1 := st.ShardStates[1]
	if !b1.Superseded || b1.State != ShardFailed {
		t.Fatalf("split parent: %+v", b1)
	}
	for _, i := range []int{2, 3} {
		sh := st.ShardStates[i]
		if sh.Kind != "split" || sh.Parent != 1 || sh.Cells != 5 {
			t.Fatalf("split child %d: %+v", i, sh)
		}
	}
	// The superseded parent owes nothing; its children do.
	missing := st.Missing()
	if len(missing) != 2 || missing[0] != 2 || missing[1] != 3 {
		t.Fatalf("missing = %v", missing)
	}
}
