package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
)

// testSpec keeps the dispatched integration runs quick; the params match
// the experiment package's shardParamsFast so the grids stay tiny.
func testSpec(selection string, shards int) Spec {
	return Spec{
		Selection: selection,
		Params:    experiment.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6},
		Shards:    shards,
	}
}

// refEncoded is the byte-exact target every dispatch must hit: the
// 1-shard file of the same run, as the unsharded path would persist it.
func refEncoded(t *testing.T, spec Spec) []byte {
	t.Helper()
	f, err := experiment.RunShard(spec.Selection, spec.Params, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// checkMerged asserts the dispatch result encodes byte-identically to the
// unsharded run.
func checkMerged(t *testing.T, res *Result, want []byte) {
	t.Helper()
	if res.Merged == nil {
		t.Fatal("dispatch returned no merged file")
	}
	got, err := res.Merged.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("merged file differs from the unsharded run (%d vs %d bytes)", len(got), len(want))
	}
}

// goodRun is the honest in-process worker behaviour: compute the shard
// and persist it, exactly as a worker subprocess would.
func goodRun(_ context.Context, t Task) error {
	f, err := experiment.RunShard(t.Spec.Selection, t.Spec.Params, 1, t.Spec.Shards, t.Index)
	if err != nil {
		return err
	}
	return f.WriteFile(t.Out)
}

// funcWorker adapts a function to the Worker interface for in-process
// failure injection.
type funcWorker struct {
	name string
	run  func(ctx context.Context, t Task) error
}

func (w *funcWorker) Name() string                          { return w.name }
func (w *funcWorker) Run(ctx context.Context, t Task) error { return w.run(ctx, t) }

// sabotage injects one failure mode into the first attempt at one shard
// index; every later attempt (on any worker sharing it) behaves honestly.
type sabotage struct {
	mu     sync.Mutex
	target int
	mode   string
	fired  bool
}

func (s *sabotage) arm() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fired {
		return false
	}
	s.fired = true
	return true
}

func (s *sabotage) run(ctx context.Context, t Task) error {
	if t.Index != s.target || !s.arm() {
		return goodRun(ctx, t)
	}
	switch s.mode {
	case "crash":
		// Worker dies mid-shard: an error and no file.
		return fmt.Errorf("injected crash")
	case "corrupt":
		// Worker "succeeds" but the file is garbage.
		if err := os.WriteFile(t.Out, []byte("not json{"), 0o644); err != nil {
			return err
		}
		return nil
	case "partial":
		// Worker is killed after writing a truncated-but-decodable file:
		// the real shard minus its last cell.
		f, err := experiment.RunShard(t.Spec.Selection, t.Spec.Params, 1, t.Spec.Shards, t.Index)
		if err != nil {
			return err
		}
		cells := f.Runs[0].Cells
		if len(cells) == 0 {
			return fmt.Errorf("sabotage: no cells to drop")
		}
		f.Runs[0].Cells = cells[:len(cells)-1]
		return f.WriteFile(t.Out)
	case "foreign":
		// Worker returns a valid shard of a different run (wrong seed).
		other := t.Spec
		other.Params.Seed = t.Spec.Params.Seed + 1
		f, err := experiment.RunShard(other.Selection, other.Params, 1, other.Shards, t.Index)
		if err != nil {
			return err
		}
		return f.WriteFile(t.Out)
	case "hang":
		// Worker wedges; only the driver's attempt timeout frees it.
		<-ctx.Done()
		return ctx.Err()
	default:
		return fmt.Errorf("unknown sabotage %q", s.mode)
	}
}

func pool(n int, run func(ctx context.Context, t Task) error) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = &funcWorker{name: fmt.Sprintf("w%d", i), run: run}
	}
	return ws
}

func TestDispatchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpAll, 3)
	want := refEncoded(t, spec)
	res, err := Run(context.Background(), spec, pool(3, goodRun), Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Resumed != 0 || res.Ran != 3 || res.Retries != 0 {
		t.Fatalf("resumed/ran/retries = %d/%d/%d, want 0/3/0", res.Resumed, res.Ran, res.Retries)
	}
	if res.Dir != "" || res.ShardPaths != nil {
		t.Fatalf("temporary working dir should not be reported: %q %v", res.Dir, res.ShardPaths)
	}
}

// TestDispatchRetriesFailures is the acceptance matrix: a worker that
// crashes mid-shard, one that writes a corrupt file, one that writes a
// decodable-but-partial file, one that returns a shard of a different
// run, and one that hangs until the attempt timeout — each must end with
// a successful retry and a merged output byte-identical to the unsharded
// run.
func TestDispatchRetriesFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	want := refEncoded(t, spec)
	for _, mode := range []string{"crash", "corrupt", "partial", "foreign", "hang"} {
		t.Run(mode, func(t *testing.T) {
			sab := &sabotage{target: 1, mode: mode}
			// The small RetryDelay routes retries through the delayed
			// requeue path as well.
			opts := Options{MaxAttempts: 3, RetryDelay: 10 * time.Millisecond}
			if mode == "hang" {
				opts.AttemptTimeout = 200 * time.Millisecond
			}
			res, err := Run(context.Background(), spec, pool(3, sab.run), opts)
			if err != nil {
				t.Fatal(err)
			}
			checkMerged(t, res, want)
			if res.Retries < 1 {
				t.Fatalf("no retry recorded for mode %q", mode)
			}
			var failed bool
			for _, a := range res.Attempts {
				if a.Shard == 1 && a.Err != "" {
					failed = true
				}
			}
			if !failed {
				t.Fatalf("attempt log records no failure for shard 1: %+v", res.Attempts)
			}
		})
	}
}

func TestDispatchExhaustsAttempts(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 2)
	broken := func(ctx context.Context, task Task) error {
		if task.Index == 0 {
			return fmt.Errorf("injected permanent failure")
		}
		return goodRun(ctx, task)
	}
	_, err := Run(context.Background(), spec, pool(2, broken), Options{MaxAttempts: 2})
	if err == nil {
		t.Fatal("dispatch succeeded despite a permanently failing shard")
	}
	if !strings.Contains(err.Error(), "shard 0") || !strings.Contains(err.Error(), "2 attempts") {
		t.Fatalf("error does not name the exhausted shard and attempts: %v", err)
	}
}

// TestDispatchResume interrupts a dispatch (one shard permanently fails
// with no attempts left) and re-runs it over the same directory: the
// journal must carry the completed shards across, and the second run must
// execute only the missing index.
func TestDispatchResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	want := refEncoded(t, spec)
	dir := t.TempDir()

	broken := func(ctx context.Context, task Task) error {
		if task.Index == 2 {
			return fmt.Errorf("injected permanent failure")
		}
		return goodRun(ctx, task)
	}
	// One worker, so shards 0 and 1 complete before shard 2 aborts the run.
	if _, err := Run(context.Background(), spec, pool(1, broken), Options{MaxAttempts: 1, Dir: dir}); err == nil {
		t.Fatal("first dispatch should have failed")
	}

	res, err := Run(context.Background(), spec, pool(2, goodRun), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Resumed != 2 || res.Ran != 1 {
		t.Fatalf("resumed/ran = %d/%d, want 2/1", res.Resumed, res.Ran)
	}
	if res.Dir != dir || len(res.ShardPaths) != 3 {
		t.Fatalf("persistent dir not reported: %q %v", res.Dir, res.ShardPaths)
	}
}

// TestDispatchResumeRevalidates covers the journal lying: a shard is
// marked done but its file has been corrupted since. The resume must
// detect it and re-run that index.
func TestDispatchResumeRevalidates(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, pool(2, goodRun), Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "shard1.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), spec, pool(2, goodRun), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Resumed != 1 || res.Ran != 1 {
		t.Fatalf("resumed/ran = %d/%d, want 1/1", res.Resumed, res.Ran)
	}
}

func TestJournalRejectsDifferentRun(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	dir := t.TempDir()
	if _, err := Run(context.Background(), spec, pool(2, goodRun), Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := spec
	other.Params.Seed = 99
	_, err := Run(context.Background(), other, pool(2, goodRun), Options{Dir: dir})
	if err == nil || !strings.Contains(err.Error(), "different run") {
		t.Fatalf("journal accepted a different run: %v", err)
	}
}

func TestDispatchContextCancel(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	hang := func(hctx context.Context, _ Task) error {
		<-hctx.Done()
		return hctx.Err()
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(ctx, spec, pool(2, hang), Options{})
		done <- err
	}()
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled dispatch returned nil error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled dispatch did not return")
	}
}

func TestSpecValidation(t *testing.T) {
	good := testSpec(experiment.ExpFig5, 2)
	if _, err := Run(context.Background(), good, nil, Options{}); err == nil {
		t.Error("empty worker pool accepted")
	}
	bad := good
	bad.Shards = 0
	if _, err := Run(context.Background(), bad, pool(1, goodRun), Options{}); err == nil {
		t.Error("zero shards accepted")
	}
	bad = good
	bad.Selection = "nonsense"
	if _, err := Run(context.Background(), bad, pool(1, goodRun), Options{}); err == nil {
		t.Error("unknown selection accepted")
	}
	bad = good
	bad.Selection = experiment.ExpTable1
	if _, err := Run(context.Background(), bad, pool(1, goodRun), Options{}); err == nil {
		t.Error("gridless selection accepted")
	}
}

func TestWorkerArgs(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 3)
	args, err := spec.WorkerArgs(2)
	if err != nil {
		t.Fatal(err)
	}
	joined := " " + strings.Join(args, " ") + " "
	for _, want := range []string{
		" -experiment fig5 ", " -seed 1 ", " -systems 4 ", " -gapop 10 ", " -gagens 6 ",
		" -ablation-u 0.6 ", " -shards 3 ", " -shard-index 2 ",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("args %q missing %q", joined, want)
		}
	}
	if strings.Contains(joined, "-out") || strings.Contains(joined, "-parallel") {
		t.Errorf("args %q must not pick the output path or host parallelism", joined)
	}

	// The defaults these flags resolve to must round-trip: a worker given
	// these args records params identical to the spec's.
	spec2 := spec
	spec2.Params = spec.Params.Normalised()
	args2, err := spec2.WorkerArgs(2)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(args, " ") != strings.Join(args2, " ") {
		t.Errorf("normalised params change the args: %q vs %q", args, args2)
	}

	unexpressible := spec
	unexpressible.Params.MotivationWrites = 7
	if _, err := unexpressible.WorkerArgs(0); err == nil {
		t.Error("params with no CLI spelling accepted")
	}
}

// TestValidateShardFile covers the acceptance filter directly: only a
// decodable, complete, same-run shard file of the right index passes.
func TestValidateShardFile(t *testing.T) {
	spec, params, runNames, err := testSpec(experiment.ExpFig5, 2).normalised()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	f, err := experiment.RunShard(spec.Selection, spec.Params, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	vf, err := ValidateShardFile(path, spec, 0, params, runNames)
	if err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	if vf == nil || vf.CellCount() != f.CellCount() {
		t.Fatalf("validation did not return the decoded file: %+v", vf)
	}
	if _, err := ValidateShardFile(path, spec, 1, params, runNames); err == nil {
		t.Error("wrong index accepted")
	}
	var otherParams bytes.Buffer
	if err := json.Compact(&otherParams, []byte(`{"seed": 2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateShardFile(path, spec, 0, otherParams.Bytes(), runNames); err == nil {
		t.Error("params mismatch accepted")
	}
	if _, err := ValidateShardFile(path, spec, 0, params, []string{"fig5", "fig6"}); err == nil {
		t.Error("missing run accepted")
	}
	if _, err := ValidateShardFile(filepath.Join(dir, "absent.json"), spec, 0, params, runNames); err == nil {
		t.Error("missing file accepted")
	}
}
