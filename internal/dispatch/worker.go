package dispatch

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// Task is one unit of dispatched work: evaluate shard Index of Spec and
// leave the cell file at Out on the local filesystem. In a balanced
// dispatch the unit is a cell batch instead: Cells carries its cell spec
// and Index is the batch id.
type Task struct {
	Spec  Spec
	Index int
	// Cells, when non-empty, is the batch's cell spec
	// (shard.FormatCellSpec): the worker evaluates exactly these cells
	// ("ioschedbench -cells <spec>") instead of shard Index's round-robin
	// share.
	Cells string
	// Out is the local path the shard file must end up at. The driver
	// removes any previous attempt's file before the task runs.
	Out string
}

// args returns the generated worker arguments for the task: the classic
// shard arguments, or the batch arguments when Cells is set.
func (t Task) args() ([]string, error) {
	if t.Cells != "" {
		return t.Spec.BatchWorkerArgs(t.Cells)
	}
	return t.Spec.WorkerArgs(t.Index)
}

// Worker evaluates shards. Implementations must honour ctx cancellation —
// the driver enforces per-attempt timeouts through it — and should return
// an error for any failure they can observe. The driver additionally
// validates the produced file (internal/shard decode, plan ownership,
// completeness, params match), so a worker that exits successfully after
// writing a corrupt or partial file is still caught and retried.
type Worker interface {
	// Name identifies the worker in progress logs and the journal.
	Name() string
	// Run evaluates t's shard and leaves the cell file at t.Out.
	Run(ctx context.Context, t Task) error
}

// LocalProcWorker runs each shard by executing an ioschedbench binary (or
// any binary accepting the same flags) as a local subprocess. It is the
// testable default backend: "ioschedbench dispatch -workers N" builds N
// of these around os.Executable().
type LocalProcWorker struct {
	// Binary is the path of the program to execute.
	Binary string
	// ExtraArgs are appended after the generated shard arguments —
	// typically host-local tuning such as "-parallel 2", which is
	// deliberately absent from Spec.WorkerArgs because it never changes
	// results.
	ExtraArgs []string
	// Env entries are appended to the parent environment for the
	// subprocess; nil inherits the parent environment unchanged.
	Env []string
	// Stderr receives the subprocess's progress output; nil discards it.
	Stderr io.Writer
	// Label overrides the worker's log name; default "local:<binary>".
	Label string
}

// Name returns the worker's log name.
func (w *LocalProcWorker) Name() string {
	if w.Label != "" {
		return w.Label
	}
	return "local:" + filepath.Base(w.Binary)
}

// Run executes the binary with the task's shard arguments plus ExtraArgs.
func (w *LocalProcWorker) Run(ctx context.Context, t Task) error {
	args, err := t.args()
	if err != nil {
		return err
	}
	args = append(args, "-out", t.Out)
	args = append(args, w.ExtraArgs...)
	cmd := exec.CommandContext(ctx, w.Binary, args...)
	cmd.Stderr = w.Stderr
	if len(w.Env) > 0 {
		cmd.Env = append(os.Environ(), w.Env...)
	}
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("dispatch: %s: %w (%v)", w.Name(), ctx.Err(), err)
		}
		return fmt.Errorf("dispatch: %s: %w", w.Name(), err)
	}
	return nil
}

// CmdWorker runs each shard through a user-supplied command template —
// the backend for remote hosts ("ssh host ...") and for wrapper scripts,
// without this package depending on any transport.
//
// Each Argv element may use the placeholders
//
//	{index}   the shard index (the batch id for a balanced dispatch)
//	{shards}  the shard count
//	{out}     the local output path
//	{args}    the generated ioschedbench arguments: Spec.WorkerArgs for a
//	          classic shard, Spec.BatchWorkerArgs for a cell batch
//
// An element that is exactly "{args}" is spliced into the argument list
// as separate arguments; inside a longer element the placeholders expand
// textually (values are space-joined), which suits commands like ssh that
// re-join their trailing arguments into one remote shell line.
//
// The file contract follows from the template: if {out} appears anywhere,
// the command is responsible for leaving the shard file at that local
// path (a local wrapper would pass "{args} -out {out}" through to
// ioschedbench); otherwise the command's standard output is captured into
// the output path, so a remote recipe is simply
//
//	ssh host ioschedbench {args} -out /dev/stdout
//
// Argv is a literal argument vector — there is no shell and no quoting
// layer (the CLI's -worker flag splits its template on whitespace), so
// an individual argument cannot contain a space. Commands that need
// shell features or spaced arguments should be wrapped in a script and
// the script named in Argv.
type CmdWorker struct {
	// Argv is the command template; Argv[0] is the program.
	Argv []string
	// Env entries are appended to the parent environment; nil inherits.
	Env []string
	// Stderr receives the command's stderr; nil discards it.
	Stderr io.Writer
	// Label overrides the worker's log name; default "cmd:<argv0>".
	Label string
}

// Name returns the worker's log name.
func (w *CmdWorker) Name() string {
	if w.Label != "" {
		return w.Label
	}
	if len(w.Argv) > 0 {
		return "cmd:" + filepath.Base(w.Argv[0])
	}
	return "cmd"
}

// Run expands the template for the task and executes it.
func (w *CmdWorker) Run(ctx context.Context, t Task) (err error) {
	if len(w.Argv) == 0 {
		return fmt.Errorf("dispatch: %s: empty command template", w.Name())
	}
	shardArgs, err := t.args()
	if err != nil {
		return err
	}
	capture := true
	var argv []string
	for _, el := range w.Argv {
		if strings.Contains(el, "{out}") {
			capture = false
		}
		if el == "{args}" {
			argv = append(argv, shardArgs...)
			continue
		}
		el = strings.ReplaceAll(el, "{args}", strings.Join(shardArgs, " "))
		el = strings.ReplaceAll(el, "{index}", strconv.Itoa(t.Index))
		el = strings.ReplaceAll(el, "{shards}", strconv.Itoa(t.Spec.Shards))
		el = strings.ReplaceAll(el, "{out}", t.Out)
		argv = append(argv, el)
	}
	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stderr = w.Stderr
	if len(w.Env) > 0 {
		cmd.Env = append(os.Environ(), w.Env...)
	}
	if capture {
		f, err := os.Create(t.Out)
		if err != nil {
			return fmt.Errorf("dispatch: %s: %w", w.Name(), err)
		}
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("dispatch: %s: %w", w.Name(), cerr)
			}
		}()
		cmd.Stdout = f
	}
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return fmt.Errorf("dispatch: %s: %w (%v)", w.Name(), ctx.Err(), err)
		}
		return fmt.Errorf("dispatch: %s: %w", w.Name(), err)
	}
	return nil
}
