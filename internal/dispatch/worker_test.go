package dispatch

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiment"
)

// The subprocess backends are tested against this test binary itself:
// when re-executed with workerEmulateEnv set, TestMain branches into
// workerMain, which accepts the ioschedbench shard flags
// (Spec.WorkerArgs' contract) and evaluates the shard in-process. That
// exercises LocalProcWorker and CmdWorker as real subprocesses without
// building the CLI; the dispatch-equivalence CI job covers the real
// binary end to end.
const workerEmulateEnv = "DISPATCH_WORKER_EMULATE"

func TestMain(m *testing.M) {
	if os.Getenv(workerEmulateEnv) != "" {
		os.Exit(workerMain(os.Getenv(workerEmulateEnv)))
	}
	os.Exit(m.Run())
}

// workerMain emulates the ioschedbench shard CLI. mode selects an
// injected failure: "crash" exits before writing, "corrupt" writes
// garbage; "ok" behaves honestly.
func workerMain(mode string) int {
	fs := flag.NewFlagSet("worker-emulate", flag.ContinueOnError)
	var (
		which   = fs.String("experiment", "all", "")
		systems = fs.Int("systems", 0, "")
		seed    = fs.Int64("seed", 1, "")
		gaPop   = fs.Int("gapop", 0, "")
		gaGens  = fs.Int("gagens", 0, "")
		paper   = fs.Bool("paperscale", false, "")
		ablU    = fs.Float64("ablation-u", 0.6, "")
		shards  = fs.Int("shards", 1, "")
		index   = fs.Int("shard-index", 0, "")
		out     = fs.String("out", "", "")
		_       = fs.Int("parallel", 0, "")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	switch mode {
	case "crash":
		fmt.Fprintln(os.Stderr, "emulated worker crash")
		return 1
	case "corrupt":
		if err := os.WriteFile(*out, []byte("junk"), 0o644); err != nil {
			return 1
		}
		return 0
	}
	p := experiment.ShardParams{
		PaperScale: *paper, Systems: *systems, Seed: *seed,
		GAPopulation: *gaPop, GAGenerations: *gaGens, AblationU: *ablU,
	}
	f, err := experiment.RunShard(*which, p, 1, *shards, *index)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "no -out")
		return 1
	}
	if err := f.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return 0
}

func TestLocalProcWorkerDispatch(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	ws := []Worker{
		&LocalProcWorker{Binary: os.Args[0], Env: []string{workerEmulateEnv + "=ok"}, Label: "proc0"},
		&LocalProcWorker{Binary: os.Args[0], Env: []string{workerEmulateEnv + "=ok"}},
	}
	res, err := Run(context.Background(), spec, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
}

// TestLocalProcWorkerCrashRetries runs a pool where one subprocess
// backend always exits non-zero: the other worker must pick up the
// retries and the merged output must still match the unsharded run.
func TestLocalProcWorkerCrashRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	var log bytes.Buffer
	ws := []Worker{
		&LocalProcWorker{Binary: os.Args[0], Env: []string{workerEmulateEnv + "=crash"}, Label: "crasher", Stderr: &log},
		&LocalProcWorker{Binary: os.Args[0], Env: []string{workerEmulateEnv + "=ok"}, Label: "good"},
	}
	res, err := Run(context.Background(), spec, ws, Options{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Retries < 1 {
		t.Fatal("crashing subprocess produced no retries")
	}
	if !strings.Contains(log.String(), "emulated worker crash") {
		t.Errorf("subprocess stderr not forwarded: %q", log.String())
	}
}

func TestCmdWorkerOutPlaceholder(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	// {out} present: the command owns the file, nothing is captured.
	argv := []string{os.Args[0], "{args}", "-out", "{out}"}
	ws := []Worker{
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=ok"}},
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=ok"}, Label: "second"},
	}
	res, err := Run(context.Background(), spec, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
}

func TestCmdWorkerStdoutCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	// No {out}: stdout is captured into the shard path — the remote
	// recipe ("ssh host ioschedbench {args} -out /dev/stdout") without
	// the ssh.
	argv := []string{os.Args[0], "{args}", "-out", "/dev/stdout"}
	ws := []Worker{
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=ok"}},
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=ok"}},
	}
	res, err := Run(context.Background(), spec, ws, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
}

// TestCmdWorkerCorruptRetries injects the "subprocess exits 0 but the
// file is garbage" failure through a real subprocess boundary.
func TestCmdWorkerCorruptRetries(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	want := refEncoded(t, spec)
	argv := []string{os.Args[0], "{args}", "-out", "{out}"}
	ws := []Worker{
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=corrupt"}, Label: "corruptor"},
		&CmdWorker{Argv: argv, Env: []string{workerEmulateEnv + "=ok"}, Label: "good"},
	}
	res, err := Run(context.Background(), spec, ws, Options{MaxAttempts: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, want)
	if res.Retries < 1 {
		t.Fatal("corrupt subprocess output produced no retries")
	}
	var sawValidationError bool
	for _, a := range res.Attempts {
		if a.Err != "" && strings.Contains(a.Err, "decode") {
			sawValidationError = true
		}
	}
	if !sawValidationError {
		t.Errorf("no validation failure recorded: %+v", res.Attempts)
	}
}

func TestCmdWorkerPlaceholderExpansion(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 3)
	task := Task{Spec: spec, Index: 1, Out: filepath.Join(t.TempDir(), "o.json")}
	shardArgs, err := spec.WorkerArgs(1)
	if err != nil {
		t.Fatal(err)
	}
	// Textual {args} inside a larger element must space-join, as an ssh
	// remote command line would need.
	w := &CmdWorker{Argv: []string{"echo", "run {index}/{shards}: {args}"}}
	if got, want := w.Name(), "cmd:echo"; got != want {
		t.Errorf("Name() = %q, want %q", got, want)
	}
	if err := w.Run(context.Background(), task); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(task.Out) // capture mode: echo's stdout
	if err != nil {
		t.Fatal(err)
	}
	want := "run 1/3: " + strings.Join(shardArgs, " ") + "\n"
	if string(data) != want {
		t.Errorf("expanded template = %q, want %q", data, want)
	}

	if err := (&CmdWorker{}).Run(context.Background(), task); err == nil {
		t.Error("empty template accepted")
	}
}
