package dispatch

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// JournalFileName is the journal's name inside the dispatch directory.
// Exported so other drivers of the same journal schema (the coordinator
// service in internal/coord) place their journals where the status
// reader and resume logic expect them.
const JournalFileName = "dispatch.journal"

// partialFileName is the auto-partial-merge output's name inside the
// dispatch directory (Options.PartialEvery).
const partialFileName = "partial.json"

// JournalVersion identifies the journal's JSONL schema, recorded in the
// plan event ("v"). A plan event without the field is version 1 (the
// field postdates the first journals). Readers reject newer versions;
// unknown event types within a known version are skipped, so adding
// event types does not require a bump. The normative spec is
// docs/DISPATCH.md.
const JournalVersion = 1

// journalEvent is one JSONL line of the dispatch journal. The journal is
// both the structured log of a dispatch and its resume state: "done"
// events name the shards that need not re-run, and the leading "plan"
// event pins which run the directory belongs to.
type journalEvent struct {
	Time  string `json:"time,omitempty"`
	Event string `json:"event"`

	// plan
	V         int             `json:"v,omitempty"`
	Selection string          `json:"selection,omitempty"`
	Shards    int             `json:"shards,omitempty"`
	Params    json.RawMessage `json:"params,omitempty"`
	// Balance names the decomposition of a balanced dispatch ("cost");
	// absent on round-robin plans, so old journals read unchanged.
	Balance string `json:"balance,omitempty"`

	// attempt / steal / fail / done / batch
	Shard   *int   `json:"shard,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Error   string `json:"error,omitempty"`
	File    string `json:"file,omitempty"`

	// batch: the realised decomposition (compatible v1 additions)
	Kind   string  `json:"kind,omitempty"`
	Parent *int    `json:"parent,omitempty"`
	Spec   string  `json:"spec,omitempty"`
	Weight float64 `json:"weight,omitempty"`

	// merged / partial / batch / done (cell counts)
	Cells int `json:"cells,omitempty"`
}

// Journal appends events to the dispatch journal file. Safe for
// concurrent use; write errors are sticky and reported by Close, so a
// full disk cannot silently disable resumability. Exported so the
// coordinator service (internal/coord) writes the same schema through
// the same code instead of forking it.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	enc    *json.Encoder
	closed bool
	err    error
}

// OpenJournal opens (or creates) the journal at path for the given run
// and returns it with the recorded file path of every shard/batch
// already journaled done, plus the decoded prior state (nil on a fresh
// journal) for cost re-planning.
//
// An existing journal must carry a plan event matching the run —
// selection, shard count, compact params and balance — otherwise the
// directory belongs to a different run and OpenJournal refuses it rather
// than mix shard sets. Decoding is delegated to ReadJournal, the one
// decoder of the journal schema, so resume and the status reader can
// never disagree about what a journal says.
func OpenJournal(path string, spec Spec, params []byte, balance string) (*Journal, map[int]string, *JournalState, error) {
	done := make(map[int]string)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, nil, fmt.Errorf("dispatch: journal: %w", err)
	}
	resuming := err == nil && len(bytes.TrimSpace(data)) > 0
	var prior *JournalState
	if resuming {
		st, err := ReadJournal(path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("%w; use a fresh directory", err)
		}
		var recorded bytes.Buffer
		if len(st.Params) > 0 {
			if err := json.Compact(&recorded, st.Params); err != nil {
				return nil, nil, nil, fmt.Errorf("dispatch: journal %s: plan params: %w", path, err)
			}
		}
		if st.Selection != spec.Selection || st.Shards != spec.Shards ||
			!bytes.Equal(recorded.Bytes(), params) {
			return nil, nil, nil, fmt.Errorf(
				"dispatch: journal %s records a different run (selection %q, %d shards); use a fresh directory",
				path, st.Selection, st.Shards)
		}
		if normalBalance(st.Balance) != normalBalance(balance) {
			return nil, nil, nil, fmt.Errorf(
				"dispatch: journal %s records a %s-balanced run, this dispatch asks for %s; use a fresh directory",
				path, normalBalance(st.Balance), normalBalance(balance))
		}
		for _, sh := range st.ShardStates {
			if sh.State == ShardDone {
				done[sh.Index] = sh.File
			}
		}
		prior = st
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("dispatch: journal: %w", err)
	}
	j := &Journal{f: f, enc: json.NewEncoder(f)}
	if !resuming {
		e := journalEvent{Event: "plan", V: JournalVersion, Selection: spec.Selection, Shards: spec.Shards, Params: params}
		if normalBalance(balance) != BalanceRoundRobin {
			// Recorded only for balanced plans, so round-robin journals
			// keep their historical bytes.
			e.Balance = normalBalance(balance)
		}
		j.write(e)
	}
	return j, done, prior, nil
}

// normalBalance resolves the default spelling: "" means round-robin.
func normalBalance(b string) string {
	if b == "" {
		return BalanceRoundRobin
	}
	return b
}

func (j *Journal) write(e journalEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)
	if err := j.enc.Encode(e); err != nil && j.err == nil {
		j.err = err
	}
}

// Attempt records the start of an attempt at a shard or batch.
func (j *Journal) Attempt(shard, attempt int, worker string) {
	j.write(journalEvent{Event: "attempt", Shard: &shard, Attempt: attempt, Worker: worker})
}

// Steal records a work-stealing attempt: a second concurrent try at a
// straggling batch by an idle worker. A compatible v1 addition — old
// readers skip it, at worst under-counting attempts.
func (j *Journal) Steal(shard, attempt int, worker string) {
	j.write(journalEvent{Event: "steal", Shard: &shard, Attempt: attempt, Worker: worker})
}

// Batch records one planned cell batch of a balanced dispatch: its id
// (the "shard" field — batches and shards share the id space), kind
// ("cost" for a planned batch, "split" for a retry's re-split child,
// "dropped" for a batch a resume re-planned away), parent batch id for
// splits (-1 = none), cell spec, cell count and predicted weight. A
// compatible v1 addition.
func (j *Journal) Batch(id int, kind string, parent int, spec string, ncells int, weight float64) {
	e := journalEvent{Event: "batch", Shard: &id, Kind: kind, Spec: spec, Cells: ncells, Weight: weight}
	if parent >= 0 {
		e.Parent = &parent
	}
	j.write(e)
}

// Fail records a failed attempt.
func (j *Journal) Fail(shard, attempt int, worker string, err error) {
	j.write(journalEvent{Event: "fail", Shard: &shard, Attempt: attempt, Worker: worker, Error: err.Error()})
}

// Done records a completed shard or batch and its validated output file.
func (j *Journal) Done(shard, attempt int, worker, file string, cells int) {
	j.write(journalEvent{Event: "done", Shard: &shard, Attempt: attempt, Worker: worker, File: file, Cells: cells})
}

// Cached records a shard satisfied from the cell cache without running.
// It is an additional event type within schema version 1 (the spec allows
// adding types without a bump; old readers skip it): resume treats it
// exactly like "done" — the file is on disk and validated.
func (j *Journal) Cached(shard int, file string) {
	j.write(journalEvent{Event: "cached", Shard: &shard, File: file})
}

// Merged records the final merge of all shards or batches.
func (j *Journal) Merged(shards, cells int) {
	j.write(journalEvent{Event: "merged", Shards: shards, Cells: cells})
}

// Partial records an auto-partial-merge output covering present shards.
func (j *Journal) Partial(file string, present, cells int) {
	j.write(journalEvent{Event: "partial", File: file, Shards: present, Cells: cells})
}

// Close flushes the journal and reports the first write error, if any.
// It is idempotent: the driver closes explicitly on its success path (so
// a failed journal surfaces as a dispatch error) and again via defer on
// the error paths.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.closed {
		j.closed = true
		if err := j.f.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}
