// Package dispatch is the fault-tolerant driver for distributed
// experiment sweeps: it fans the shard indices of one run out to a pool
// of workers, detects lost, failed, corrupt and timed-out shards, re-runs
// them by index, and merges the complete cover into the single-shard
// equivalent of the unsharded run.
//
// The driver builds directly on the two invariants the lower layers
// guarantee:
//
//   - internal/exec: a grid cell's randomness derives from its (runner,
//     point, system) path, so a retried shard reproduces its cells
//     byte-identically no matter which worker — or which host, or which
//     attempt — evaluates it;
//   - internal/shard: N shard files form a validated disjoint cover, so
//     the driver can prove per shard (File.ValidateCells) and per run
//     (Merge) that nothing was lost, duplicated or mixed in from another
//     run before it declares the sweep complete.
//
// Validation is registry-driven on top of that: the selection's run
// list comes from experiment.SelectionRuns, and every produced file's
// run headers are checked against the registered experiments
// (experiment.ValidateRuns) — expected grid for the recorded params,
// compatible cell-payload version — so a worker built against a
// different payload layout is a failed attempt, not a silent mis-merge,
// and a newly registered experiment is dispatchable with no change
// here.
//
// Failure handling is therefore entirely mechanical: any attempt that
// errors, times out, or leaves a file that fails validation is simply
// re-queued, up to Options.MaxAttempts per shard. Dispatched output is
// byte-identical to the unsharded run — enforced by this package's tests
// and the dispatch-equivalence CI job.
//
// # Workers
//
// Work is delegated through the Worker interface; two backends ship:
//
//   - LocalProcWorker re-executes an ioschedbench binary as a local
//     subprocess per shard — the testable default, and what the CLI's
//     "ioschedbench dispatch -workers N" uses (re-executing itself);
//   - CmdWorker runs a user-supplied command template (for example
//     "ssh host ioschedbench {args} -out /dev/stdout"), which covers
//     remote hosts without this package depending on SSH.
//
// # Journal
//
// Every dispatch appends structured events (plan, attempt, fail, done,
// partial, merged) to a JSONL journal in its working directory. A re-run
// with the same directory resumes: shards the journal marks done are
// re-validated from their files and skipped, and only missing or invalid
// shards are executed. The journal also rejects reuse of a directory by
// a different run (selection, shard count or params mismatch).
// ReadJournal decodes any journal — live, finished or dead — into its
// per-shard states, missing indices and failure log; the CLI's "status"
// subcommand is that reader plus formatting.
//
// # Observability
//
// A running dispatch is observable without a second source of truth:
// Options.Progress emits a typed, versioned event stream mirroring the
// journal (fold it through a Tracker for per-shard state, counts and an
// ETA from observed per-shard wall-clock), and Options.PartialEvery
// periodically merges the shards completed so far into the working
// directory's partial.json — a valid partial cover file renderable at
// any moment (shard.MergePartial, "ioschedbench merge -partial") and
// removed once the final merge supersedes it.
//
// The shard file format the driver produces and consumes is specified in
// docs/SHARD_FORMAT.md; the journal and progress-event schemas in
// docs/DISPATCH.md.
package dispatch
