package dispatch

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiment"
	"repro/internal/shard"
)

// TestTrackerSnapshot drives a Tracker through a synthetic event stream
// with pinned timestamps, so states, averages and the ETA are exact.
func TestTrackerSnapshot(t *testing.T) {
	t0 := time.Date(2026, 7, 30, 12, 0, 0, 0, time.UTC)
	at := func(d time.Duration) time.Time { return t0.Add(d) }
	tr := NewTracker()
	tr.Observe(ProgressEvent{Kind: ProgressPlan, Shards: 4, Shard: -1, Time: t0})

	s := tr.SnapshotAt(at(time.Second))
	if s.Total != 4 || s.Pending != 4 || s.Done != 0 || s.ETA != 0 {
		t.Fatalf("after plan: %+v", s)
	}
	if s.Elapsed != time.Second {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}

	tr.Observe(ProgressEvent{Kind: ProgressResumed, Shard: 3, Time: at(0)})
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 0, Attempt: 1, Worker: "w0", Time: at(0)})
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 1, Attempt: 1, Worker: "w1", Time: at(0)})
	s = tr.SnapshotAt(at(time.Second))
	if s.Running != 2 || s.Pending != 1 || s.Done != 1 || s.Resumed != 1 {
		t.Fatalf("mid-flight: %+v", s)
	}
	if s.Shards[0].State != ShardRunning || s.Shards[0].Worker != "w0" || s.Shards[3].State != ShardDone {
		t.Fatalf("shard states: %+v", s.Shards)
	}

	// Shard 0 completes after 10s; shard 1 fails and retries.
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 0, Attempt: 1, Worker: "w0", Time: at(10 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressFailed, Shard: 1, Attempt: 1, Worker: "w1", Err: "boom", Time: at(4 * time.Second)})
	s = tr.SnapshotAt(at(10 * time.Second))
	if s.Done != 2 || s.Failed != 1 || s.Pending != 1 || s.Running != 0 {
		t.Fatalf("after done+fail: %+v", s)
	}
	if s.Shards[1].State != ShardFailed || s.Shards[1].Err != "boom" {
		t.Fatalf("failed shard: %+v", s.Shards[1])
	}
	if s.AvgShard != 10*time.Second {
		t.Fatalf("avg = %v", s.AvgShard)
	}
	// 2 shards remain (failed + pending), width clamps to 1.
	if s.ETA != 20*time.Second {
		t.Fatalf("ETA = %v", s.ETA)
	}

	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 1, Attempt: 2, Worker: "w0", Time: at(10 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 1, Attempt: 2, Worker: "w0", Time: at(30 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressAttempt, Shard: 2, Attempt: 1, Worker: "w1", Time: at(30 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 2, Attempt: 1, Worker: "w1", Time: at(40 * time.Second)})
	tr.Observe(ProgressEvent{Kind: ProgressMerged, Shards: 4, Shard: -1, Cells: 60, Time: at(40 * time.Second)})
	s = tr.SnapshotAt(at(40 * time.Second))
	if s.Done != 4 || !s.Merged || s.ETA != 0 {
		t.Fatalf("final: %+v", s)
	}
	// Average over the three observed attempts: (10+20+10)/3.
	if want := 40 * time.Second / 3; s.AvgShard != want {
		t.Fatalf("avg = %v, want %v", s.AvgShard, want)
	}
}

// TestTrackerIgnoresMalformedEvents: a Tracker fed garbage (negative or
// out-of-plan indices, unknown kinds) must not panic or miscount.
func TestTrackerIgnoresMalformedEvents(t *testing.T) {
	tr := NewTracker()
	tr.Observe(ProgressEvent{Kind: ProgressPlan, Shards: 2, Shard: -1})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: -1})
	tr.Observe(ProgressEvent{Kind: ProgressKind("telemetry-v9"), Shard: 0})
	tr.Observe(ProgressEvent{Kind: ProgressDone, Shard: 5}) // beyond the plan: table grows
	s := tr.Snapshot()
	if s.Total != 6 || s.Done != 1 {
		t.Fatalf("snapshot: %+v", s)
	}
}

// eventLog collects a dispatch's progress stream concurrency-safely.
type eventLog struct {
	mu     sync.Mutex
	events []ProgressEvent
}

func (l *eventLog) observe(e ProgressEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.events = append(l.events, e)
}

func (l *eventLog) kinds() map[ProgressKind]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := map[ProgressKind]int{}
	for _, e := range l.events {
		out[e.Kind]++
	}
	return out
}

// TestDispatchProgressStream runs a real dispatch with the progress
// stream attached: the event stream must open with a plan, carry one
// attempt+done per shard, close with a merge, and fold through a Tracker
// into an all-done snapshot.
func TestDispatchProgressStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	log := &eventLog{}
	tr := NewTracker()
	res, err := Run(context.Background(), spec, pool(2, goodRun), Options{
		Progress: func(e ProgressEvent) {
			if e.Version != ProgressVersion {
				t.Errorf("event version = %d", e.Version)
			}
			log.observe(e)
			tr.Observe(e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, refEncoded(t, spec))
	kinds := log.kinds()
	if kinds[ProgressPlan] != 1 || kinds[ProgressMerged] != 1 ||
		kinds[ProgressAttempt] != 3 || kinds[ProgressDone] != 3 || kinds[ProgressFailed] != 0 {
		t.Fatalf("event kinds: %v", kinds)
	}
	s := tr.Snapshot()
	if s.Total != 3 || s.Done != 3 || !s.Merged || s.Running+s.Pending+s.Failed != 0 {
		t.Fatalf("final snapshot: %+v", s)
	}
}

// TestDispatchAutoPartialMerge: with PartialEvery set, the driver must
// journal and emit partial merges that are themselves valid partial cover
// files while the sweep runs, and remove the file once the cover merges.
func TestDispatchAutoPartialMerge(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	dir := t.TempDir()
	var partials []ProgressEvent
	slow := func(ctx context.Context, task Task) error {
		// One worker and a per-shard pause: the 1ms ticker is guaranteed
		// to fire between completions.
		time.Sleep(30 * time.Millisecond)
		return goodRun(ctx, task)
	}
	res, err := Run(context.Background(), spec, pool(1, slow), Options{
		Dir:          dir,
		PartialEvery: time.Millisecond,
		Progress: func(e ProgressEvent) {
			if e.Kind != ProgressPartial {
				return
			}
			// The handler runs synchronously in the coordinator, so the
			// file is stable: it must be a valid, consistent partial cover.
			f, err := shard.ReadFile(e.File)
			if err != nil {
				t.Errorf("partial file: %v", err)
				return
			}
			if f.Partial == nil || f.Partial.Shards != 3 || len(f.Partial.Present) != e.Shards {
				t.Errorf("partial header: %+v (event %+v)", f.Partial, e)
			}
			if err := f.ValidateCells(); err != nil {
				t.Errorf("partial file cells: %v", err)
			}
			partials = append(partials, e)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkMerged(t, res, refEncoded(t, spec))
	if len(partials) == 0 {
		t.Fatal("no partial merge was written")
	}
	if _, err := os.Stat(filepath.Join(dir, "partial.json")); !os.IsNotExist(err) {
		t.Errorf("partial.json not removed after the final merge: %v", err)
	}
	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.PartialFile == "" || st.PartialShards == 0 {
		t.Errorf("journal records no partial merge: %+v", st)
	}
}

// TestDispatchPartialWriteFailureIsReported: a failing auto-partial
// write must surface on the progress stream (the CLI's -progress mode
// discards the log), and must not fail the sweep it observes.
func TestDispatchPartialWriteFailureIsReported(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 2)
	dir := t.TempDir()
	// A directory squatting on partial.json makes the rename fail.
	if err := os.Mkdir(filepath.Join(dir, "partial.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	failures := 0
	slow := func(ctx context.Context, task Task) error {
		time.Sleep(30 * time.Millisecond)
		return goodRun(ctx, task)
	}
	res, err := Run(context.Background(), spec, pool(1, slow), Options{
		Dir:          dir,
		PartialEvery: time.Millisecond,
		Progress: func(e ProgressEvent) {
			if e.Kind == ProgressPartial && e.Err != "" {
				mu.Lock()
				failures++
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatalf("partial write failures killed the sweep: %v", err)
	}
	checkMerged(t, res, refEncoded(t, spec))
	if failures == 0 {
		t.Fatal("no failed-partial event reached the progress stream")
	}
}

// TestDispatchResumeRemovesStalePartial: a resume that itself runs
// without PartialEvery must still delete the partial.json an earlier,
// observed invocation left behind — a stale partial next to a finished
// sweep invites rendering a subset.
func TestDispatchResumeRemovesStalePartial(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	dir := t.TempDir()
	broken := func(ctx context.Context, task Task) error {
		if task.Index == 2 {
			return fmt.Errorf("injected permanent failure")
		}
		time.Sleep(30 * time.Millisecond)
		return goodRun(ctx, task)
	}
	if _, err := Run(context.Background(), spec, pool(1, broken), Options{
		MaxAttempts: 1, Dir: dir, PartialEvery: time.Millisecond,
	}); err == nil {
		t.Fatal("first dispatch should have failed")
	}
	if _, err := os.Stat(filepath.Join(dir, "partial.json")); err != nil {
		t.Fatalf("interrupted dispatch left no partial.json: %v", err)
	}
	if _, err := Run(context.Background(), spec, pool(1, goodRun), Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "partial.json")); !os.IsNotExist(err) {
		t.Errorf("resume left the stale partial.json behind: %v", err)
	}
}

func TestDispatchPartialEveryNeedsDir(t *testing.T) {
	spec := testSpec(experiment.ExpFig5, 2)
	_, err := Run(context.Background(), spec, pool(1, goodRun), Options{PartialEvery: time.Second})
	if err == nil || !strings.Contains(err.Error(), "Dir") {
		t.Fatalf("PartialEvery without Dir accepted: %v", err)
	}
}

// TestReadJournalInterrupted reads the journal of a dispatch that died
// with one shard unfinished: the state must list exactly the missing
// index, its failure, and no merge.
func TestReadJournalInterrupted(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	spec := testSpec(experiment.ExpFig5, 3)
	dir := t.TempDir()
	broken := func(ctx context.Context, task Task) error {
		if task.Index == 2 {
			return fmt.Errorf("injected permanent failure")
		}
		return goodRun(ctx, task)
	}
	if _, err := Run(context.Background(), spec, pool(1, broken), Options{MaxAttempts: 1, Dir: dir}); err == nil {
		t.Fatal("first dispatch should have failed")
	}
	st, err := ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st.Selection != spec.Selection || st.Shards != 3 || st.Version != JournalVersion {
		t.Fatalf("plan: %+v", st)
	}
	if st.DoneCount() != 2 || st.Merged {
		t.Fatalf("done=%d merged=%v", st.DoneCount(), st.Merged)
	}
	if got := st.Missing(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("missing = %v", got)
	}
	if got := st.Failed(); !reflect.DeepEqual(got, []int{2}) {
		t.Fatalf("failed = %v", got)
	}
	sh := st.ShardStates[2]
	if sh.State != ShardFailed || !strings.Contains(sh.Err, "injected") || sh.Attempts != 1 {
		t.Fatalf("shard 2 state: %+v", sh)
	}

	// After the resume completes the run, the same journal reads merged
	// with nothing missing.
	if _, err := Run(context.Background(), spec, pool(1, goodRun), Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	st, err = ReadJournalDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Merged || len(st.Missing()) != 0 || st.DoneCount() != 3 {
		t.Fatalf("resumed journal: merged=%v missing=%v done=%d", st.Merged, st.Missing(), st.DoneCount())
	}
}

func TestReadJournalRejectsBadJournals(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadJournalDir(dir); err == nil {
		t.Error("absent journal accepted")
	}
	path := filepath.Join(dir, "dispatch.journal")
	if err := os.WriteFile(path, []byte(`{"event":"done","shard":1}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "plan") {
		t.Errorf("planless journal: %v", err)
	}
	newer := `{"event":"plan","v":99,"selection":"fig5","shards":2,"params":{"seed":1}}` + "\n"
	if err := os.WriteFile(path, []byte(newer), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJournal(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("newer journal version: %v", err)
	}
}
