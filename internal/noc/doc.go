// Package noc implements a cycle-level 2-D mesh network-on-chip: XY
// dimension-ordered routing, store-and-forward routers, and fixed-priority
// link arbitration (Figure 3's "R" boxes).
//
// The paper uses the NoC as the source of the variable, contention-
// dependent latency between an application CPU and the I/O controller —
// the reason remote instigation of I/O cannot be timing-accurate and timed
// commands must be pre-loaded instead. The model therefore focuses on the
// latency/contention behaviour: per-hop router and link delays, output
// ports that serialise packets, and arbitration that favours
// higher-priority flows while lower-priority traffic queues.
package noc
