package noc

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/timing"
)

// Coord addresses a mesh node.
type Coord struct{ X, Y int }

func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Packet is a routed message. Payload is opaque to the mesh.
type Packet struct {
	ID       uint64
	Src, Dst Coord
	// Priority wins output-port arbitration; larger is stronger.
	Priority int
	Payload  interface{}
	// Injected and Delivered are stamped by the mesh.
	Injected  timing.Cycle
	Delivered timing.Cycle
	// Hops counts router-to-router traversals.
	Hops int
}

// Latency returns the end-to-end delivery latency.
func (p *Packet) Latency() timing.Cycle { return p.Delivered - p.Injected }

// Config sizes the mesh and its delays.
type Config struct {
	// Width and Height are the mesh dimensions (columns, rows).
	Width, Height int
	// RouterDelay is the per-hop processing time (route computation and
	// buffering) in cycles.
	RouterDelay timing.Cycle
	// LinkDelay is the per-hop wire traversal time in cycles.
	LinkDelay timing.Cycle
}

// DefaultConfig is a 4×4 mesh with 2-cycle routers and 1-cycle links.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, RouterDelay: 2, LinkDelay: 1}
}

// Stats aggregates delivery statistics.
type Stats struct {
	Injected     uint64
	Delivered    uint64
	TotalLatency timing.Cycle
	MaxLatency   timing.Cycle
	MinLatency   timing.Cycle
}

// MeanLatency returns the average delivery latency in cycles.
func (s *Stats) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Delivered)
}

// port is one output port of a router: a priority queue serialised over the
// link.
type port struct {
	busy  bool
	queue []*Packet
	seqs  []uint64 // arrival sequence, parallel to queue, for FIFO ties
}

// router is one mesh node.
type router struct {
	at    Coord
	ports [5]*port // indexed by direction
}

// directions
const (
	dirLocal = iota
	dirEast
	dirWest
	dirNorth
	dirSouth
)

// Mesh is the network fabric.
type Mesh struct {
	cfg     Config
	k       *sim.Kernel
	routers [][]*router // [y][x]
	sinks   map[Coord]func(*Packet)
	nextID  uint64
	arbSeq  uint64
	stats   Stats
}

// New builds a mesh on the kernel. Dimensions must be positive.
func New(k *sim.Kernel, cfg Config) (*Mesh, error) {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, fmt.Errorf("noc: invalid mesh %dx%d", cfg.Width, cfg.Height)
	}
	if cfg.RouterDelay < 0 || cfg.LinkDelay < 0 {
		return nil, fmt.Errorf("noc: negative delays")
	}
	m := &Mesh{cfg: cfg, k: k, sinks: make(map[Coord]func(*Packet))}
	m.routers = make([][]*router, cfg.Height)
	for y := 0; y < cfg.Height; y++ {
		m.routers[y] = make([]*router, cfg.Width)
		for x := 0; x < cfg.Width; x++ {
			r := &router{at: Coord{X: x, Y: y}}
			for d := range r.ports {
				r.ports[d] = &port{}
			}
			m.routers[y][x] = r
		}
	}
	return m, nil
}

// Stats returns a copy of the aggregate statistics.
func (m *Mesh) Stats() Stats { return m.stats }

// Attach registers the delivery handler for packets destined to c — the
// node's network interface. Attaching twice replaces the handler.
func (m *Mesh) Attach(c Coord, handler func(*Packet)) error {
	if !m.valid(c) {
		return fmt.Errorf("noc: attach at %v outside %dx%d mesh", c, m.cfg.Width, m.cfg.Height)
	}
	m.sinks[c] = handler
	return nil
}

func (m *Mesh) valid(c Coord) bool {
	return c.X >= 0 && c.X < m.cfg.Width && c.Y >= 0 && c.Y < m.cfg.Height
}

// Inject submits a packet at its source node at the current simulation
// time. The mesh assigns the packet ID.
func (m *Mesh) Inject(p *Packet) error {
	if !m.valid(p.Src) || !m.valid(p.Dst) {
		return fmt.Errorf("noc: packet %v -> %v outside mesh", p.Src, p.Dst)
	}
	m.nextID++
	p.ID = m.nextID
	p.Injected = m.k.Now()
	m.stats.Injected++
	m.arrive(p, p.Src)
	return nil
}

// arrive processes a packet reaching router at; after RouterDelay it is
// enqueued on the XY output port (or delivered locally).
func (m *Mesh) arrive(p *Packet, at Coord) {
	r := m.routers[at.Y][at.X]
	m.k.After(m.cfg.RouterDelay, func() {
		dir := xyRoute(at, p.Dst)
		if dir == dirLocal {
			m.deliver(p)
			return
		}
		m.enqueue(r, dir, p)
	})
}

func (m *Mesh) deliver(p *Packet) {
	p.Delivered = m.k.Now()
	lat := p.Latency()
	m.stats.Delivered++
	m.stats.TotalLatency += lat
	if lat > m.stats.MaxLatency {
		m.stats.MaxLatency = lat
	}
	if m.stats.MinLatency == 0 || lat < m.stats.MinLatency {
		m.stats.MinLatency = lat
	}
	if sink, ok := m.sinks[p.Dst]; ok {
		sink(p)
	}
}

// xyRoute returns the output direction for dimension-ordered routing.
func xyRoute(at, dst Coord) int {
	switch {
	case dst.X > at.X:
		return dirEast
	case dst.X < at.X:
		return dirWest
	case dst.Y > at.Y:
		return dirNorth
	case dst.Y < at.Y:
		return dirSouth
	default:
		return dirLocal
	}
}

func step(at Coord, dir int) Coord {
	switch dir {
	case dirEast:
		return Coord{X: at.X + 1, Y: at.Y}
	case dirWest:
		return Coord{X: at.X - 1, Y: at.Y}
	case dirNorth:
		return Coord{X: at.X, Y: at.Y + 1}
	case dirSouth:
		return Coord{X: at.X, Y: at.Y - 1}
	default:
		return at
	}
}

// enqueue places p on router r's output port dir and starts transmission if
// the link is idle.
func (m *Mesh) enqueue(r *router, dir int, p *Packet) {
	pt := r.ports[dir]
	m.arbSeq++
	pt.queue = append(pt.queue, p)
	pt.seqs = append(pt.seqs, m.arbSeq)
	if !pt.busy {
		m.transmit(r, dir)
	}
}

// transmit pops the arbitration winner from the port queue and sends it
// over the link; on arrival the next transmission is scheduled.
func (m *Mesh) transmit(r *router, dir int) {
	pt := r.ports[dir]
	if len(pt.queue) == 0 {
		pt.busy = false
		return
	}
	pt.busy = true
	// Fixed-priority arbitration, FIFO among equals.
	win := 0
	for i := 1; i < len(pt.queue); i++ {
		if pt.queue[i].Priority > pt.queue[win].Priority ||
			(pt.queue[i].Priority == pt.queue[win].Priority && pt.seqs[i] < pt.seqs[win]) {
			win = i
		}
	}
	p := pt.queue[win]
	pt.queue = append(pt.queue[:win], pt.queue[win+1:]...)
	pt.seqs = append(pt.seqs[:win], pt.seqs[win+1:]...)
	nextHop := step(r.at, dir)
	m.k.After(m.cfg.LinkDelay, func() {
		p.Hops++
		m.arrive(p, nextHop)
		m.transmit(r, dir)
	})
}

// HopDistance returns the Manhattan distance between two nodes — the hop
// count of an uncontended XY route.
func HopDistance(a, b Coord) int {
	dx, dy := a.X-b.X, a.Y-b.Y
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// UncontendedLatency returns the zero-load delivery latency between two
// nodes under this configuration: one router traversal per visited router
// plus one link traversal per hop.
func (c Config) UncontendedLatency(a, b Coord) timing.Cycle {
	h := timing.Cycle(HopDistance(a, b))
	return (h+1)*c.RouterDelay + h*c.LinkDelay
}

// Coords lists all node coordinates of the mesh in row-major order.
func (m *Mesh) Coords() []Coord {
	var out []Coord
	for y := 0; y < m.cfg.Height; y++ {
		for x := 0; x < m.cfg.Width; x++ {
			out = append(out, Coord{X: x, Y: y})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Y != out[b].Y {
			return out[a].Y < out[b].Y
		}
		return out[a].X < out[b].X
	})
	return out
}
