package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/timing"
)

func mkMesh(t *testing.T, cfg Config) (*sim.Kernel, *Mesh) {
	t.Helper()
	var k sim.Kernel
	m, err := New(&k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &k, m
}

func TestNewRejectsBadConfig(t *testing.T) {
	var k sim.Kernel
	if _, err := New(&k, Config{Width: 0, Height: 4}); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(&k, Config{Width: 2, Height: 2, LinkDelay: -1}); err == nil {
		t.Error("negative delay accepted")
	}
}

func TestUncontendedDelivery(t *testing.T) {
	cfg := DefaultConfig()
	k, m := mkMesh(t, cfg)
	var got *Packet
	if err := m.Attach(Coord{3, 3}, func(p *Packet) { got = p }); err != nil {
		t.Fatal(err)
	}
	p := &Packet{Src: Coord{0, 0}, Dst: Coord{3, 3}}
	if err := m.Inject(p); err != nil {
		t.Fatal(err)
	}
	k.Run(0)
	if got == nil {
		t.Fatal("packet not delivered")
	}
	want := cfg.UncontendedLatency(Coord{0, 0}, Coord{3, 3})
	if got.Latency() != want {
		t.Errorf("latency = %d, want %d", got.Latency(), want)
	}
	if got.Hops != 6 {
		t.Errorf("hops = %d, want 6", got.Hops)
	}
}

func TestLocalDelivery(t *testing.T) {
	cfg := DefaultConfig()
	k, m := mkMesh(t, cfg)
	var got *Packet
	m.Attach(Coord{1, 1}, func(p *Packet) { got = p })
	m.Inject(&Packet{Src: Coord{1, 1}, Dst: Coord{1, 1}})
	k.Run(0)
	if got == nil {
		t.Fatal("not delivered")
	}
	if got.Latency() != cfg.RouterDelay {
		t.Errorf("local latency = %d, want %d", got.Latency(), cfg.RouterDelay)
	}
}

func TestXYRouteIsDeterministicPath(t *testing.T) {
	// XY: move east/west first, then north/south.
	if d := xyRoute(Coord{0, 0}, Coord{2, 2}); d != dirEast {
		t.Errorf("first move = %d, want east", d)
	}
	if d := xyRoute(Coord{2, 0}, Coord{2, 2}); d != dirNorth {
		t.Errorf("aligned-X move = %d, want north", d)
	}
	if d := xyRoute(Coord{2, 2}, Coord{0, 2}); d != dirWest {
		t.Errorf("west move = %d", d)
	}
	if d := xyRoute(Coord{2, 2}, Coord{2, 0}); d != dirSouth {
		t.Errorf("south move = %d", d)
	}
	if d := xyRoute(Coord{1, 1}, Coord{1, 1}); d != dirLocal {
		t.Errorf("local move = %d", d)
	}
}

func TestContentionSerialisesLink(t *testing.T) {
	// Two same-priority packets from the same source down the same path:
	// the second is delayed by link serialisation.
	cfg := Config{Width: 4, Height: 1, RouterDelay: 1, LinkDelay: 5}
	k, m := mkMesh(t, cfg)
	var delivered []*Packet
	m.Attach(Coord{3, 0}, func(p *Packet) { delivered = append(delivered, p) })
	a := &Packet{Src: Coord{0, 0}, Dst: Coord{3, 0}}
	b := &Packet{Src: Coord{0, 0}, Dst: Coord{3, 0}}
	m.Inject(a)
	m.Inject(b)
	k.Run(0)
	if len(delivered) != 2 {
		t.Fatalf("delivered %d packets", len(delivered))
	}
	if delivered[0] != a {
		t.Error("FIFO violated for equal priorities")
	}
	if b.Delivered <= a.Delivered {
		t.Error("second packet should be strictly later")
	}
}

func TestPriorityArbitrationWins(t *testing.T) {
	// Fill the first link with a queue, then check the high-priority
	// packet overtakes the low-priority ones that are still queued.
	cfg := Config{Width: 4, Height: 1, RouterDelay: 1, LinkDelay: 10}
	k, m := mkMesh(t, cfg)
	var order []uint64
	var hi *Packet
	m.Attach(Coord{3, 0}, func(p *Packet) { order = append(order, p.ID) })
	// Three low-priority packets queue up; one high-priority injected last.
	var low []*Packet
	for i := 0; i < 3; i++ {
		p := &Packet{Src: Coord{0, 0}, Dst: Coord{3, 0}, Priority: 1}
		low = append(low, p)
		m.Inject(p)
	}
	hi = &Packet{Src: Coord{0, 0}, Dst: Coord{3, 0}, Priority: 9}
	m.Inject(hi)
	k.Run(0)
	if len(order) != 4 {
		t.Fatalf("delivered %d", len(order))
	}
	// The first low packet already held the link, but the high-priority one
	// must beat the remaining two.
	if order[1] != hi.ID {
		t.Errorf("delivery order = %v, high-priority ID = %d", order, hi.ID)
	}
	_ = low
}

func TestInjectOutsideMesh(t *testing.T) {
	_, m := mkMesh(t, DefaultConfig())
	if err := m.Inject(&Packet{Src: Coord{9, 0}, Dst: Coord{0, 0}}); err == nil {
		t.Error("out-of-mesh source accepted")
	}
	if err := m.Attach(Coord{-1, 0}, func(*Packet) {}); err == nil {
		t.Error("out-of-mesh attach accepted")
	}
}

func TestStatsAggregate(t *testing.T) {
	cfg := DefaultConfig()
	k, m := mkMesh(t, cfg)
	m.Attach(Coord{1, 0}, func(*Packet) {})
	m.Attach(Coord{2, 0}, func(*Packet) {})
	m.Inject(&Packet{Src: Coord{0, 0}, Dst: Coord{1, 0}})
	m.Inject(&Packet{Src: Coord{0, 0}, Dst: Coord{2, 0}})
	k.Run(0)
	st := m.Stats()
	if st.Injected != 2 || st.Delivered != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.MinLatency > st.MaxLatency || st.MeanLatency() <= 0 {
		t.Errorf("latency stats inconsistent: %+v", st)
	}
}

func TestHopDistance(t *testing.T) {
	if HopDistance(Coord{0, 0}, Coord{3, 2}) != 5 {
		t.Error("hop distance broken")
	}
	if HopDistance(Coord{3, 2}, Coord{0, 0}) != 5 {
		t.Error("hop distance not symmetric")
	}
}

func TestCoords(t *testing.T) {
	_, m := mkMesh(t, Config{Width: 2, Height: 2, RouterDelay: 1, LinkDelay: 1})
	cs := m.Coords()
	want := []Coord{{0, 0}, {1, 0}, {0, 1}, {1, 1}}
	if len(cs) != len(want) {
		t.Fatalf("coords = %v", cs)
	}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("coords = %v, want %v", cs, want)
		}
	}
}

// Property: every injected packet is delivered exactly once, with latency
// at least the uncontended latency, and cross-traffic only ever increases
// latency.
func TestDeliveryProperty(t *testing.T) {
	cfg := DefaultConfig()
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%20 + 1
		rng := rand.New(rand.NewSource(seed))
		var k sim.Kernel
		m, err := New(&k, cfg)
		if err != nil {
			return false
		}
		delivered := map[uint64]int{}
		for _, c := range m.Coords() {
			c := c
			m.Attach(c, func(p *Packet) {
				if p.Dst != c {
					t.Errorf("packet for %v delivered at %v", p.Dst, c)
				}
				delivered[p.ID]++
			})
		}
		pkts := make([]*Packet, n)
		for i := 0; i < n; i++ {
			p := &Packet{
				Src:      Coord{rng.Intn(cfg.Width), rng.Intn(cfg.Height)},
				Dst:      Coord{rng.Intn(cfg.Width), rng.Intn(cfg.Height)},
				Priority: rng.Intn(3),
			}
			pkts[i] = p
			at := timing.Cycle(rng.Intn(50))
			k.At(at, func() { m.Inject(p) })
		}
		k.Run(0)
		for _, p := range pkts {
			if delivered[p.ID] != 1 {
				return false
			}
			if p.Latency() < cfg.UncontendedLatency(p.Src, p.Dst) {
				return false
			}
		}
		return m.Stats().Delivered == uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
