package sim

import (
	"container/heap"
	"fmt"

	"repro/internal/timing"
)

// Event is a scheduled callback.
type event struct {
	at  timing.Cycle
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulator clocked in hardware cycles.
// The zero value is ready to use.
type Kernel struct {
	now    timing.Cycle
	seq    uint64
	events eventHeap
	// Processed counts executed events, for tests and run-away detection.
	processed uint64
}

// Now returns the current simulation time in cycles.
func (k *Kernel) Now() timing.Cycle { return k.now }

// Processed returns the number of events executed so far.
func (k *Kernel) Processed() uint64 { return k.processed }

// Pending returns the number of events waiting to fire.
func (k *Kernel) Pending() int { return len(k.events) }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// panics: it is always a component bug, and silently reordering time would
// corrupt the simulation.
func (k *Kernel) At(at timing.Cycle, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", at, k.now))
	}
	k.seq++
	heap.Push(&k.events, event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (k *Kernel) After(delay timing.Cycle, fn func()) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	k.At(k.now+delay, fn)
}

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(event)
	k.now = e.at
	k.processed++
	e.fn()
	return true
}

// RunUntil executes events until the queue is empty or the next event is
// past the deadline; the clock is left at the last executed event (or moved
// to deadline if no event fired at or before it). It returns the number of
// events executed.
func (k *Kernel) RunUntil(deadline timing.Cycle) uint64 {
	var n uint64
	for len(k.events) > 0 && k.events[0].at <= deadline {
		k.Step()
		n++
	}
	if k.now < deadline {
		k.now = deadline
	}
	return n
}

// Run executes events until the queue empties or maxEvents is reached.
// It returns the number of events executed. maxEvents <= 0 means no limit;
// hardware models with clocks that re-arm themselves should always pass a
// limit or use RunUntil.
func (k *Kernel) Run(maxEvents uint64) uint64 {
	var n uint64
	for len(k.events) > 0 {
		if maxEvents > 0 && n >= maxEvents {
			break
		}
		k.Step()
		n++
	}
	return n
}
