// Package sim provides the deterministic discrete-event simulation kernel
// underneath the hardware models (NoC, I/O controller, devices).
//
// Events carry a cycle timestamp and a sequence number; the kernel pops
// them in (time, sequence) order, so simulations are fully deterministic:
// two events scheduled for the same cycle fire in scheduling order. The
// kernel knows nothing about the hardware — components schedule closures.
package sim
