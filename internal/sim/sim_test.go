package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/timing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var k Kernel
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if k.Now() != 30 {
		t.Errorf("now = %d, want 30", k.Now())
	}
}

func TestSameCycleFIFO(t *testing.T) {
	var k Kernel
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		k.At(7, func() { got = append(got, i) })
	}
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-cycle order = %v", got)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	var k Kernel
	var fired timing.Cycle
	k.At(100, func() {
		k.After(50, func() { fired = k.Now() })
	})
	k.Run(0)
	if fired != 150 {
		t.Errorf("fired at %d, want 150", fired)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	var k Kernel
	k.At(10, func() {})
	k.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past event")
		}
	}()
	k.At(5, func() {})
}

func TestNegativeDelayPanics(t *testing.T) {
	var k Kernel
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.After(-1, func() {})
}

func TestRunUntil(t *testing.T) {
	var k Kernel
	var count int
	for i := 1; i <= 10; i++ {
		k.At(timing.Cycle(i*10), func() { count++ })
	}
	n := k.RunUntil(50)
	if n != 5 || count != 5 {
		t.Fatalf("ran %d events, count %d; want 5", n, count)
	}
	if k.Now() != 50 {
		t.Errorf("now = %d, want 50", k.Now())
	}
	if k.Pending() != 5 {
		t.Errorf("pending = %d, want 5", k.Pending())
	}
	// Deadline with no events: clock still advances.
	var k2 Kernel
	k2.RunUntil(99)
	if k2.Now() != 99 {
		t.Errorf("empty RunUntil now = %d", k2.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	var k Kernel
	// Self-rearming clock.
	var ticks int
	var tick func()
	tick = func() {
		ticks++
		k.After(10, tick)
	}
	k.At(0, tick)
	n := k.Run(100)
	if n != 100 || ticks != 100 {
		t.Fatalf("ran %d, ticks %d", n, ticks)
	}
	if k.Processed() != 100 {
		t.Errorf("processed = %d", k.Processed())
	}
}

func TestStepEmpty(t *testing.T) {
	var k Kernel
	if k.Step() {
		t.Fatal("Step on empty kernel should report false")
	}
}

// Property: regardless of insertion order, events fire in non-decreasing
// time order and equal-time events fire in insertion order.
func TestOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		var k Kernel
		type rec struct {
			at  timing.Cycle
			seq int
		}
		var fired []rec
		for i, raw := range times {
			at := timing.Cycle(raw % 64)
			i := i
			k.At(at, func() { fired = append(fired, rec{at: at, seq: i}) })
		}
		k.Run(0)
		if len(fired) != len(times) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i-1].at > fired[i].at {
				return false
			}
			if fired[i-1].at == fired[i].at && fired[i-1].seq > fired[i].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRunUntilDeadlineInclusive: an event scheduled exactly at the
// RunUntil deadline fires, and the clock lands on the deadline — the
// wake contract the replay SimClock builds its SleepUntil on.
func TestRunUntilDeadlineInclusive(t *testing.T) {
	var k Kernel
	fired := false
	k.At(100, func() { fired = true })
	if n := k.RunUntil(100); n != 1 || !fired {
		t.Fatalf("deadline event: ran %d, fired %v; want 1, true", n, fired)
	}
	if k.Now() != 100 {
		t.Errorf("now = %d, want 100", k.Now())
	}
	if k.Processed() != 1 {
		t.Errorf("processed = %d, want 1", k.Processed())
	}
	// The next RunUntil past an empty queue just advances the clock.
	if n := k.RunUntil(150); n != 0 || k.Now() != 150 {
		t.Errorf("empty advance: ran %d, now %d; want 0, 150", n, k.Now())
	}
}
