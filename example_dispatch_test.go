package iosched_test

import (
	"context"
	"fmt"
	"log"

	iosched "repro"
)

// inprocWorker satisfies iosched.DispatchWorker by evaluating shards in
// the current process. Production pools use iosched.LocalProcWorker
// (ioschedbench subprocesses) or iosched.CmdWorker (e.g. ssh command
// templates) instead; a custom backend only needs these two methods.
type inprocWorker int

func (w inprocWorker) Name() string { return fmt.Sprintf("inproc[%d]", int(w)) }

func (w inprocWorker) Run(_ context.Context, t iosched.DispatchTask) error {
	f, err := iosched.RunExperimentShard(t.Spec.Selection, t.Spec.Params, 1, t.Spec.Shards, t.Index)
	if err != nil {
		return err
	}
	return f.WriteFile(t.Out)
}

// ExampleDispatchShards drives a whole sharded sweep fault-tolerantly:
// three shards over two workers, with automatic validation, retry of
// lost shards, and the final merge. The merged file is byte-identical to
// the unsharded run's — dispatching only changes where the cells were
// computed.
func ExampleDispatchShards() {
	spec := iosched.DispatchSpec{
		Selection: "fig5",
		Params:    iosched.ShardParams{Systems: 4, Seed: 1, GAPopulation: 10, GAGenerations: 6},
		Shards:    3,
	}
	workers := []iosched.DispatchWorker{inprocWorker(0), inprocWorker(1)}
	res, err := iosched.DispatchShards(context.Background(), spec, workers, iosched.DispatchOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dispatched %d shards with %d retries; merged %d cells\n",
		res.Ran, res.Retries, res.Merged.CellCount())
	// Output:
	// dispatched 3 shards with 0 retries; merged 60 cells
}
