package iosched

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/analysis"
	"repro/internal/benchtraj"
	"repro/internal/controller"
	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/gen"
	"repro/internal/hwcost"
	"repro/internal/noc"
	"repro/internal/sched"
	"repro/internal/sched/fps"
	"repro/internal/sched/ga"
	"repro/internal/sched/gpiocp"
	"repro/internal/sched/staticsched"
	"repro/internal/sim"
	"repro/internal/taskmodel"
	"repro/internal/timing"
)

// benchConfig is a reduced experiment configuration so a full -bench=. run
// finishes in minutes; the CLI regenerates the figures at any scale.
func benchConfig() experiment.Config {
	cfg := experiment.Default()
	cfg.Systems = 5
	cfg.GA.Population = 20
	cfg.GA.Generations = 15
	return cfg
}

// BenchmarkFig5Schedulability regenerates Figure 5 (schedulable fraction
// of FPS-offline / FPS-online / GPIOCP / static / GA across utilisations).
func BenchmarkFig5Schedulability(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Fig5(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Parallel regenerates Figure 5 serially and on one worker
// per CPU through the shared benchtraj bodies. The two sub-benchmarks
// produce identical results by the engine's determinism invariant, so
// the ns/op ratio is a pure wall-clock speedup — the same measurement
// the `ioschedbench bench` subcommand records as the trajectory's
// parallel_speedup field (see internal/benchtraj).
func BenchmarkFig5Parallel(b *testing.B) {
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{fmt.Sprintf("parallel-%d", runtime.NumCPU()), runtime.NumCPU()},
	} {
		b.Run(bc.name, benchtraj.Fig5(bc.parallelism))
	}
}

// BenchmarkGASolveParallel measures the GA's chunked fitness evaluation at
// 1 worker vs one per CPU on a single crowded partition.
func BenchmarkGASolveParallel(b *testing.B) {
	jobs := benchJobs(b, 0.7)
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallelism-%d", par), func(b *testing.B) {
			opts := ga.DefaultOptions()
			opts.Parallelism = par
			for i := 0; i < b.N; i++ {
				opts.Seed = int64(i)
				if _, err := ga.Solve(jobs, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Psi and BenchmarkFig7Upsilon regenerate Figures 6 and 7
// (the runner computes both metrics in one pass; each bench reports one).
func BenchmarkFig6Psi(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		psi, _, err := experiment.Fig6And7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(psi.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

func BenchmarkFig7Upsilon(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		_, ups, err := experiment.Fig6And7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(ups.Points) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkTable1ResourceModel regenerates Table I from the structural
// hardware-cost model.
func BenchmarkTable1ResourceModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := hwcost.Table1()
		if len(rows) != 7 {
			b.Fatal("incomplete table")
		}
	}
}

// BenchmarkMotivationNoC regenerates the Section I experiment (remote
// write jitter over the mesh vs the pre-loaded controller).
func BenchmarkMotivationNoC(b *testing.B) {
	cfg := experiment.DefaultMotivation()
	cfg.Writes = 50
	for i := 0; i < b.N; i++ {
		if _, err := experiment.Motivation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the core algorithms ---
//
// The gated tier benchmarks (GASolve, StaticScheduler,
// DepgraphBuildDecompose, FPSOfflineSimulation) delegate to
// internal/benchtraj so `go test -bench` and the `ioschedbench bench`
// trajectory subcommand measure exactly the same bodies.

func benchJobs(b *testing.B, u float64) []taskmodel.Job {
	b.Helper()
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), u)
	if err != nil {
		b.Fatal(err)
	}
	return ts.Jobs()
}

func BenchmarkDepgraphBuildDecompose(b *testing.B) { benchtraj.DepgraphBuildDecompose(b) }

func BenchmarkStaticScheduler(b *testing.B) { benchtraj.StaticScheduler(b) }

func BenchmarkGASolve(b *testing.B) { benchtraj.GASolve(b) }

func BenchmarkFPSOfflineSimulation(b *testing.B) { benchtraj.FPSOfflineSimulation(b) }

func BenchmarkDispatchPack(b *testing.B) { benchtraj.DispatchPack(b) }

func BenchmarkCodecEncodeBinary(b *testing.B) { benchtraj.CodecEncodeBinary(b) }

func BenchmarkCodecDecodeBinary(b *testing.B) { benchtraj.CodecDecodeBinary(b) }

func BenchmarkFPSOnlineAnalysis(b *testing.B) {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), 0.7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fps.Analyze(ts.Tasks)
	}
}

func BenchmarkGPIOCPBaseline(b *testing.B) {
	jobs := benchJobs(b, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Feasibility varies by system; only hard errors abort.
		_, err := (gpiocp.Scheduler{}).Schedule(jobs)
		if err != nil && !isInfeasible(err) {
			b.Fatal(err)
		}
	}
}

func isInfeasible(err error) bool {
	return errors.Is(err, sched.ErrInfeasible)
}

// BenchmarkControllerHyperperiod runs the proposed controller through one
// hyper-period of a scheduled paper-style system.
func BenchmarkControllerHyperperiod(b *testing.B) {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(2)), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	schedules, err := sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
	if err != nil {
		b.Fatal(err)
	}
	clock := timing.Clock10MHz
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var k sim.Kernel
		ctrl := controller.New()
		bank, _ := device.NewGPIOBank("g", 16)
		if _, err := ctrl.AddProcessor(&k, 0, controller.GPIOExecutor{Bank: bank}, controller.ExecuteAlways); err != nil {
			b.Fatal(err)
		}
		progs := map[int]controller.Program{}
		for t := range ts.Tasks {
			progs[ts.Tasks[t].ID] = controller.Program{{Op: controller.OpTogglePin, Pin: device.Pin(t % 16)}}
		}
		if err := ctrl.Deploy(progs, schedules, clock, ts.Hyperperiod(), 1); err != nil {
			b.Fatal(err)
		}
		k.Run(0)
	}
}

// BenchmarkNoCMeshSaturation pushes packets through the mesh under load.
func BenchmarkNoCMeshSaturation(b *testing.B) {
	cfg := noc.DefaultConfig()
	for i := 0; i < b.N; i++ {
		var k sim.Kernel
		m, err := noc.New(&k, cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range m.Coords() {
			m.Attach(c, func(*noc.Packet) {})
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for p := 0; p < 500; p++ {
			pkt := &noc.Packet{
				Src:      noc.Coord{X: rng.Intn(cfg.Width), Y: rng.Intn(cfg.Height)},
				Dst:      noc.Coord{X: rng.Intn(cfg.Width), Y: rng.Intn(cfg.Height)},
				Priority: rng.Intn(4),
			}
			at := timing.Cycle(rng.Intn(1000))
			k.At(at, func() { m.Inject(pkt) })
		}
		k.Run(0)
		if m.Stats().Delivered != 500 {
			b.Fatal("packets lost")
		}
	}
}

// BenchmarkSystemGeneration measures the synthetic system generator.
func BenchmarkSystemGeneration(b *testing.B) {
	cfg := gen.PaperConfig()
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.System(rng, 0.9); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiDeviceScaling measures the partitioned-controller scaling
// study (schedulability and accuracy vs device count).
func BenchmarkMultiDeviceScaling(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		points, err := experiment.MultiDevice(cfg, 0.8, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
		if len(points) != 3 {
			b.Fatal("bad result")
		}
	}
}

// BenchmarkEndToEndAnalysis measures the Section III-C I/O-aware
// end-to-end bound computation.
func BenchmarkEndToEndAnalysis(b *testing.B) {
	cfg := gen.PaperConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(5)), 0.5)
	if err != nil {
		b.Fatal(err)
	}
	schedules, err := sched.ScheduleAll(ts, staticsched.New(staticsched.Options{}))
	if err != nil {
		b.Fatal(err)
	}
	cpu, ctl := noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 3}
	flows := []analysis.Flow{
		{Name: "req", Priority: 2, Period: 10 * timing.Millisecond,
			BasicLatency: 50 * timing.Microsecond, Route: analysis.XYRoute(cpu, ctl)},
		{Name: "resp", Priority: 2, Period: 10 * timing.Millisecond,
			BasicLatency: 50 * timing.Microsecond, Route: analysis.XYRoute(ctl, cpu)},
		{Name: "video", Priority: 3, Period: 2 * timing.Millisecond,
			BasicLatency: 300 * timing.Microsecond,
			Route:        analysis.XYRoute(noc.Coord{X: 0, Y: 2}, noc.Coord{X: 3, Y: 2})},
	}
	tx := analysis.Transaction{
		Name: "read", Request: 0, Response: 1, Task: ts.Tasks[0].ID,
		Device: 0, Deadline: 500 * timing.Millisecond,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(tx, flows, schedules); err != nil {
			b.Fatal(err)
		}
	}
}
