package iosched_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	iosched "repro"
)

func exampleTasks() []iosched.Task {
	return []iosched.Task{
		{Name: "injector", C: 1 * iosched.Millisecond, T: 20 * iosched.Millisecond,
			Delta: 8 * iosched.Millisecond, Theta: 5 * iosched.Millisecond},
		{Name: "sensor", C: 2 * iosched.Millisecond, T: 40 * iosched.Millisecond,
			Delta: 25 * iosched.Millisecond, Theta: 10 * iosched.Millisecond},
	}
}

func TestFacadeQuickstartFlow(t *testing.T) {
	ts, err := iosched.NewTaskSet(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	for _, m := range []iosched.Method{
		iosched.MethodStatic, iosched.MethodGA,
		iosched.MethodFPSOffline, iosched.MethodGPIOCP,
	} {
		schedules, err := iosched.ScheduleWith(ts, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		psi, ups := schedules.Metrics(iosched.LinearCurve)
		if psi < 0 || psi > 1 || ups < 0 || ups > 1.000001 {
			t.Errorf("%s: metrics out of range: %g, %g", m, psi, ups)
		}
	}
	if _, err := iosched.ScheduleWith(ts, "bogus"); err == nil {
		t.Error("unknown method accepted")
	}
}

func TestFacadeSchedulers(t *testing.T) {
	ts, err := iosched.NewTaskSet(exampleTasks())
	if err != nil {
		t.Fatal(err)
	}
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	jobs := ts.Jobs()
	for _, s := range []iosched.Scheduler{
		iosched.NewStaticScheduler(iosched.StaticOptions{}),
		iosched.NewGAScheduler(iosched.GADefaultOptions()),
		iosched.NewFPSOffline(),
		iosched.NewGPIOCP(),
	} {
		schedule, err := s.Schedule(jobs)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := schedule.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

func TestFacadeGASolveAndMetrics(t *testing.T) {
	ts, _ := iosched.NewTaskSet(exampleTasks())
	ts.AssignDMPO()
	ts.ApplyPaperQuality(1)
	jobs := ts.Jobs()
	opts := iosched.GADefaultOptions()
	opts.Population, opts.Generations, opts.Seed = 16, 10, 3
	res, err := iosched.GASolve(jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestPsi()
	psi, err := iosched.Psi(jobs, best.Starts)
	if err != nil {
		t.Fatal(err)
	}
	if psi != best.Psi {
		t.Errorf("Ψ mismatch: %g vs %g", psi, best.Psi)
	}
	if _, err := iosched.Upsilon(jobs, best.Starts, iosched.LinearCurve); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFPSOnlineAndGen(t *testing.T) {
	cfg := iosched.PaperGenConfig()
	ts, err := cfg.System(rand.New(rand.NewSource(1)), 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// The analysis runs per partition; the paper config is single-device.
	_ = iosched.FPSOnlineSchedulable(ts.Tasks)
}

func TestFacadeTable1(t *testing.T) {
	rows := iosched.Table1()
	if len(rows) != 7 {
		t.Fatalf("table rows = %d", len(rows))
	}
	if rows[0].Name != "Proposed" {
		t.Errorf("first row = %s", rows[0].Name)
	}
}

func TestFacadeErrInfeasible(t *testing.T) {
	// An impossible set: two tasks that each need more than half the
	// device inside overlapping boundaries of one short window.
	tasks := []iosched.Task{
		{C: 6 * iosched.Millisecond, T: 10 * iosched.Millisecond,
			Delta: 4 * iosched.Millisecond, Theta: 2 * iosched.Millisecond, Vmax: 2, Vmin: 1},
		{C: 6 * iosched.Millisecond, T: 10 * iosched.Millisecond,
			Delta: 5 * iosched.Millisecond, Theta: 2 * iosched.Millisecond, Vmax: 2, Vmin: 1},
	}
	ts, err := iosched.NewTaskSet(tasks)
	if err != nil {
		t.Skipf("model rejects the set outright: %v", err)
	}
	ts.AssignDMPO()
	_, err = iosched.ScheduleWith(ts, iosched.MethodStatic)
	if !errors.Is(err, iosched.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestFacadeShardWorkflow drives the public shard/merge API end to end on
// a small grid: two shards of Figure 5, written to disk, read back,
// merged, and aggregated to the exact unsharded result.
func TestFacadeShardWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	p := iosched.ShardParams{Systems: 3, Seed: 1, GAPopulation: 10, GAGenerations: 6}
	cfg := p.Config()
	want, err := iosched.Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths := make([]string, 2)
	for i := range paths {
		f, err := iosched.RunExperimentShard("fig5", p, 0, len(paths), i)
		if err != nil {
			t.Fatal(err)
		}
		paths[i] = filepath.Join(dir, fmt.Sprintf("shard%d.json", i))
		if err := f.WriteFile(paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	files := make([]*iosched.ShardFile, len(paths))
	for i, path := range paths {
		if files[i], err = iosched.ReadShardFile(path); err != nil {
			t.Fatal(err)
		}
	}
	merged, err := iosched.MergeShardFiles(files)
	if err != nil {
		t.Fatal(err)
	}
	got, err := iosched.Fig5FromCells(cfg, merged.Runs[0].Cells)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("merged shards differ from the unsharded run")
	}
	// An incomplete shard set must be rejected, not silently aggregated.
	if _, err := iosched.MergeShardFiles(files[:1]); err == nil {
		t.Error("incomplete shard set accepted")
	}
}

func TestFacadeExperimentConfigs(t *testing.T) {
	d := iosched.DefaultExperimentConfig()
	p := iosched.PaperScaleConfig()
	if p.Systems != 1000 || p.GA.Population != 300 || p.GA.Generations != 500 {
		t.Errorf("paper scale = %d systems, GA %dx%d", p.Systems, p.GA.Population, p.GA.Generations)
	}
	if d.Systems >= p.Systems {
		t.Error("default should be smaller than paper scale")
	}
}
